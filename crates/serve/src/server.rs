//! The planner service: a multi-threaded TCP server for strategy searches.
//!
//! Pure std: a nonblocking [`TcpListener`] accept loop feeds connections to
//! a bounded worker pool over an `mpsc` channel; each worker speaks the
//! newline-delimited JSON protocol of [`crate::protocol`] and answers
//! through the [`StrategyCache`]. Shutdown is cooperative — an
//! [`AtomicBool`] flag (typically wired to SIGINT via
//! [`crate::install_sigint`]) stops the accept loop, after which workers
//! drain buffered and in-flight requests before the pool joins.
//!
//! Observability rides on a [`pase_obs::Trace`]: one `"request"` span per
//! request (latency), plus `requests` / `cache_hits` / `cache_misses` /
//! `coalesced` counter samples.
//!
//! The cache sits behind a [`ShardedCache`] — lock-striped stripes plus a
//! singleflight layer that coalesces concurrent identical queries into one
//! search (see [`crate::sharded`]); the `{"stats": true}` wire request
//! exposes its counters.

use crate::cache::{strategy_cache_key, CacheEntry};
use crate::protocol::{
    write_batch_close, write_batch_open, write_error_json, write_frontier_response_json,
    write_response_json, write_stats_json, Request, RequestKind,
};
use crate::sharded::{Lookup, ShardedCache};
use pase_core::{FrontierPoint, Search, SearchOutcome, SearchReport};
use pase_cost::{ConfigRule, PruneOptions};
use pase_obs::Trace;
use std::io::{ErrorKind, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::time::Duration;

/// How long the accept loop sleeps between polls, and the read timeout
/// granularity at which idle connections notice a shutdown.
const POLL: Duration = Duration::from_millis(20);

/// Accept-loop sleep. Unlike the read timeout (which wakes as soon as
/// bytes arrive), this sleep bounds how long a queued connection waits to
/// be accepted, so it is kept much shorter than [`POLL`] — at 20ms it was
/// the p99 of every benchmarked request mix.
const ACCEPT_POLL: Duration = Duration::from_millis(1);

/// Maximum accepted request-line length. A client streaming bytes without
/// a newline is cut off here instead of growing the buffer unboundedly.
pub(crate) const MAX_LINE: usize = 4 << 20;

/// Which connection front end [`Server::run`] drives.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FrontEnd {
    /// Thread-per-connection loop: each accepted connection occupies a
    /// worker thread for its whole lifetime. Kept as the A/B baseline.
    Threaded,
    /// Event-driven epoll readiness loop (linux only): one event thread
    /// owns every connection's buffers and workers only ever see complete
    /// request lines, so idle connections cost bytes, not threads.
    Event,
}

impl Default for FrontEnd {
    fn default() -> Self {
        if cfg!(target_os = "linux") {
            FrontEnd::Event
        } else {
            FrontEnd::Threaded
        }
    }
}

impl FrontEnd {
    /// Parse a CLI-style name (`"event"` / `"threaded"`).
    pub fn parse(s: &str) -> Result<Self, String> {
        match s {
            "event" => Ok(FrontEnd::Event),
            "threaded" => Ok(FrontEnd::Threaded),
            other => Err(format!(
                "unknown front end '{other}' (expected 'event' or 'threaded')"
            )),
        }
    }

    /// The CLI-style name (inverse of [`FrontEnd::parse`]).
    pub fn as_str(self) -> &'static str {
        match self {
            FrontEnd::Event => "event",
            FrontEnd::Threaded => "threaded",
        }
    }
}

/// Planner service configuration.
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Bind address; use port 0 for an ephemeral port.
    pub addr: String,
    /// Worker-pool size (bounds concurrent searches).
    pub workers: usize,
    /// Default per-request deadline; a request's `deadline_ms` or
    /// `budget_seconds` may shorten but never extend it.
    pub deadline: Duration,
    /// In-memory strategy-cache capacity (entries).
    pub cache_capacity: usize,
    /// Approximate in-memory strategy-cache byte budget (0 = unbounded).
    /// Entries vary wildly in size — frontier entries carry the whole
    /// Pareto set — so the byte-weighted LRU evicts by bytes before the
    /// entry cap (see [`crate::StrategyCache::with_max_bytes`]).
    pub cache_max_bytes: u64,
    /// Directory for persistent cache entries (`None` = memory only).
    pub cache_dir: Option<PathBuf>,
    /// Connections with no complete request line for this long are closed,
    /// so idle keep-alive clients cannot pin workers (each connection
    /// occupies a worker for its whole lifetime) and starve the accept
    /// queue.
    pub idle_timeout: Duration,
    /// Cache lock stripes (rounded up to a power of two). `0` (the
    /// default) derives the count from the worker pool:
    /// `min(16, workers.next_power_of_two())`, so a 2-worker server does
    /// not pay 16-stripe overhead. `1` reproduces the single-mutex PR 4
    /// cache for A/B benchmarking.
    pub cache_shards: usize,
    /// Coalesce concurrent identical queries into one search (default on).
    pub singleflight: bool,
    /// Connection front end (see [`FrontEnd`]; default [`FrontEnd::Event`]
    /// on linux, [`FrontEnd::Threaded`] elsewhere).
    pub frontend: FrontEnd,
    /// Optional zoo-prewarm spec (`models:devices:machines`, each a
    /// comma-separated list — e.g. `"mlp,resnet:4,8:test"`). The
    /// cross-product is searched through the normal singleflight lookup
    /// path before the server accepts its first connection, so a
    /// prewarmed server answers matching queries as cache hits.
    pub prewarm: Option<String>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:0".into(),
            workers: 4,
            deadline: Duration::from_secs(120),
            cache_capacity: 64,
            cache_max_bytes: 0,
            cache_dir: None,
            idle_timeout: Duration::from_secs(30),
            cache_shards: 0,
            singleflight: true,
            frontend: FrontEnd::default(),
            prewarm: None,
        }
    }
}

/// Totals reported by [`Server::run`] after shutdown.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ServeSummary {
    /// Requests answered (including error and stats responses).
    pub requests: u64,
    /// Requests answered from the strategy cache.
    pub cache_hits: u64,
    /// Requests that ran a fresh search.
    pub cache_misses: u64,
    /// Requests answered by waiting on another request's identical
    /// in-flight search (the singleflight layer).
    pub coalesced: u64,
    /// Cache entries filled by `--prewarm` before the first accept.
    pub prewarmed: u64,
}

/// Shared per-server state handed to every worker.
pub(crate) struct Shared {
    pub(crate) cfg: ServerConfig,
    pub(crate) cache: ShardedCache,
    pub(crate) shutdown: AtomicBool,
    pub(crate) trace: Trace,
    pub(crate) requests: AtomicU64,
    pub(crate) prewarmed: AtomicU64,
}

/// A bound planner service. Construct with [`Server::bind`], then call
/// [`Server::run`] (blocking) from the serving thread.
pub struct Server {
    listener: TcpListener,
    shared: Arc<Shared>,
}

impl Server {
    /// Bind the listener and assemble the cache. The server does not
    /// accept connections until [`Server::run`].
    pub fn bind(cfg: ServerConfig) -> std::io::Result<Self> {
        let listener = TcpListener::bind(&cfg.addr)?;
        // Stripe count follows the worker pool unless pinned: more stripes
        // than workers only buys lock padding nobody contends on.
        let shards = if cfg.cache_shards == 0 {
            cfg.workers.max(1).next_power_of_two().min(16)
        } else {
            cfg.cache_shards
        };
        let cache = ShardedCache::new(
            shards,
            cfg.cache_capacity,
            cfg.cache_dir.clone(),
            cfg.singleflight,
        )
        .with_max_bytes(cfg.cache_max_bytes);
        Ok(Self {
            listener,
            shared: Arc::new(Shared {
                cfg,
                cache,
                shutdown: AtomicBool::new(false),
                trace: Trace::new(),
                requests: AtomicU64::new(0),
                prewarmed: AtomicU64::new(0),
            }),
        })
    }

    /// The actually-bound address (resolves ephemeral ports).
    pub fn local_addr(&self) -> std::io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// A handle that stops the server when set to `true`: the accept loop
    /// exits, in-flight requests drain, and [`Server::run`] returns.
    pub fn shutdown_handle(&self) -> ShutdownHandle {
        ShutdownHandle {
            shared: Arc::clone(&self.shared),
        }
    }

    /// Accept connections and serve until the shutdown flag is set.
    /// Returns the request/cache totals once every worker has drained.
    ///
    /// If [`ServerConfig::prewarm`] is set, the zoo is searched first —
    /// clients that connect during the prewarm wait in the listen backlog.
    pub fn run(self) -> std::io::Result<ServeSummary> {
        if let Some(spec) = self.shared.cfg.prewarm.clone() {
            let n = crate::prewarm::prewarm(&spec, &self.shared)
                .map_err(|e| std::io::Error::new(ErrorKind::InvalidInput, e))?;
            self.shared.prewarmed.store(n, Ordering::SeqCst);
        }
        match self.shared.cfg.frontend {
            FrontEnd::Threaded => self.run_threaded(),
            #[cfg(target_os = "linux")]
            FrontEnd::Event => crate::event::run(self.listener, self.shared),
            #[cfg(not(target_os = "linux"))]
            FrontEnd::Event => Err(std::io::Error::new(
                ErrorKind::Unsupported,
                "the event front end needs linux epoll; use FrontEnd::Threaded",
            )),
        }
    }

    /// The thread-per-connection front end ([`FrontEnd::Threaded`]).
    fn run_threaded(self) -> std::io::Result<ServeSummary> {
        self.listener.set_nonblocking(true)?;
        let (tx, rx) = mpsc::channel::<TcpStream>();
        let rx = Arc::new(Mutex::new(rx));
        let workers: Vec<_> = (0..self.shared.cfg.workers.max(1))
            .map(|_| {
                let rx = Arc::clone(&rx);
                let shared = Arc::clone(&self.shared);
                std::thread::spawn(move || {
                    // One response buffer per worker, reused across every
                    // connection and request this worker ever serves.
                    let mut buf = String::new();
                    loop {
                        // Holding the lock only for recv() keeps the pool
                        // work-stealing: whichever worker is idle takes the
                        // next connection.
                        let next = rx.lock().expect("worker queue").recv();
                        match next {
                            Ok(stream) => handle_connection(stream, &shared, &mut buf),
                            Err(_) => break, // accept loop closed the channel
                        }
                    }
                })
            })
            .collect();

        while !self.shared.shutdown.load(Ordering::SeqCst) {
            match self.listener.accept() {
                Ok((stream, _)) => {
                    // Request/response lines are tiny; Nagle + delayed ACK
                    // would add tens of ms to every round trip.
                    let _ = stream.set_nodelay(true);
                    // A send can only fail if all workers died; surface
                    // that as a server error rather than spinning.
                    if tx.send(stream).is_err() {
                        return Err(std::io::Error::new(
                            ErrorKind::Other,
                            "worker pool terminated unexpectedly",
                        ));
                    }
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => std::thread::sleep(ACCEPT_POLL),
                Err(e) if e.kind() == ErrorKind::Interrupted => {}
                Err(e) => return Err(e),
            }
        }

        // Drain the listen backlog: connections whose handshake completed
        // before shutdown was requested still get served.
        loop {
            match self.listener.accept() {
                Ok((stream, _)) => {
                    let _ = stream.set_nodelay(true);
                    if tx.send(stream).is_err() {
                        break;
                    }
                }
                Err(e) if e.kind() == ErrorKind::Interrupted => {}
                Err(_) => break,
            }
        }
        // Closing the channel lets each worker finish its queued and
        // in-flight connections, then exit — the graceful drain.
        drop(tx);
        for w in workers {
            let _ = w.join();
        }
        Ok(summarize(&self.shared))
    }
}

/// Snapshot the request/cache totals for [`ServeSummary`] — shared by
/// both front ends at shutdown.
pub(crate) fn summarize(shared: &Shared) -> ServeSummary {
    let counters = shared.cache.counters();
    ServeSummary {
        requests: shared.requests.load(Ordering::SeqCst),
        cache_hits: counters.hits,
        cache_misses: counters.misses,
        coalesced: counters.coalesced,
        prewarmed: shared.prewarmed.load(Ordering::SeqCst),
    }
}

/// Clonable stop signal for a [`Server`] (see [`Server::shutdown_handle`]).
#[derive(Clone)]
pub struct ShutdownHandle {
    shared: Arc<Shared>,
}

impl ShutdownHandle {
    /// Request shutdown: stop accepting, drain in-flight work, return from
    /// [`Server::run`].
    pub fn shutdown(&self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
    }

    /// Whether shutdown has been requested.
    pub fn is_shutdown(&self) -> bool {
        self.shared.shutdown.load(Ordering::SeqCst)
    }
}

/// Reads newline-delimited lines from a stream with a poll-granularity
/// read timeout, so idle connections notice shutdown without losing
/// partially received lines (BufReader's `read_line` may drop a partial
/// line on timeout; this accumulator never does).
struct LineReader {
    stream: TcpStream,
    buf: Vec<u8>,
}

enum Line {
    /// A complete line (without the trailing newline).
    Full(String),
    /// No complete line yet; the read timed out.
    Pending,
    /// The peer closed the connection.
    Eof,
    /// The line exceeded [`MAX_LINE`] before a newline arrived.
    TooLong,
}

impl LineReader {
    fn new(stream: TcpStream) -> std::io::Result<Self> {
        stream.set_read_timeout(Some(POLL))?;
        Ok(Self {
            stream,
            buf: Vec::new(),
        })
    }

    fn next_line(&mut self) -> std::io::Result<Line> {
        loop {
            if let Some(nl) = self.buf.iter().position(|&b| b == b'\n') {
                let rest = self.buf.split_off(nl + 1);
                let mut line = std::mem::replace(&mut self.buf, rest);
                line.pop(); // the newline
                if line.last() == Some(&b'\r') {
                    line.pop();
                }
                return Ok(Line::Full(String::from_utf8_lossy(&line).into_owned()));
            }
            if self.buf.len() > MAX_LINE {
                return Ok(Line::TooLong);
            }
            let mut chunk = [0u8; 4096];
            match self.stream.read(&mut chunk) {
                Ok(0) => return Ok(Line::Eof),
                Ok(n) => self.buf.extend_from_slice(&chunk[..n]),
                Err(e) if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut => {
                    return Ok(Line::Pending)
                }
                Err(e) if e.kind() == ErrorKind::Interrupted => {}
                Err(e) => return Err(e),
            }
        }
    }
}

/// Serve one connection until EOF, an I/O error, the configured idle
/// timeout, or (once shutdown has been requested) the first idle poll. Buffered
/// requests are always answered before the connection closes — that is
/// the drain guarantee.
fn handle_connection(stream: TcpStream, shared: &Shared, out: &mut String) {
    let mut writer = match stream.try_clone() {
        Ok(w) => w,
        Err(_) => return,
    };
    let mut reader = match LineReader::new(stream) {
        Ok(r) => r,
        Err(_) => return,
    };
    // `out` is the worker's reusable response buffer: every response is
    // rendered into it (after a clear) and written straight to the socket,
    // so the steady-state serve path allocates nothing per response.
    // One write per response: the newline is appended into the reused
    // buffer so the whole line goes out in a single segment.
    let mut respond = |response: &str| {
        writer
            .write_all(response.as_bytes())
            .and_then(|()| writer.flush())
            .is_ok()
    };
    let max_idle_polls = (shared.cfg.idle_timeout.as_millis() / POLL.as_millis()).max(1);
    let mut idle_polls = 0u128;
    loop {
        match reader.next_line() {
            Ok(Line::Full(line)) => {
                idle_polls = 0;
                if line.trim().is_empty() {
                    continue;
                }
                out.clear();
                handle_line(&line, shared, out);
                out.push('\n');
                if !respond(out) {
                    return;
                }
            }
            Ok(Line::Pending) => {
                idle_polls += 1;
                if shared.shutdown.load(Ordering::SeqCst) || idle_polls >= max_idle_polls {
                    return;
                }
            }
            Ok(Line::TooLong) => {
                out.clear();
                write_error_json(
                    out,
                    &pase_core::Error::Protocol(format!("request line exceeds {MAX_LINE} bytes")),
                );
                out.push('\n');
                respond(out);
                return;
            }
            Ok(Line::Eof) | Err(_) => return,
        }
    }
}

/// Answer one request line into `out` (cleared by the caller). A line is
/// a single search, a `batch` of searches (answered in order as one
/// response array), or a `stats` probe; each batch element is counted
/// and spanned as its own request.
pub(crate) fn handle_line(line: &str, shared: &Shared, out: &mut String) {
    match RequestKind::parse(line) {
        Ok(RequestKind::Batch(reqs)) => {
            shared.trace.counter("batch_size", reqs.len() as u64);
            write_batch_open(out);
            for (i, req) in reqs.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                let mut span = shared.trace.span("request");
                let n = shared.requests.fetch_add(1, Ordering::SeqCst) + 1;
                shared.trace.counter("requests", n);
                span.arg("model", req.model.as_str());
                answer_search(req, shared, out);
            }
            write_batch_close(out);
        }
        Ok(RequestKind::Search(req)) => {
            let mut span = shared.trace.span("request");
            let n = shared.requests.fetch_add(1, Ordering::SeqCst) + 1;
            shared.trace.counter("requests", n);
            span.arg("model", req.model.as_str());
            answer_search(&req, shared, out);
        }
        Ok(RequestKind::Stats) => {
            let _span = shared.trace.span("request");
            let n = shared.requests.fetch_add(1, Ordering::SeqCst) + 1;
            shared.trace.counter("requests", n);
            let counters = shared.cache.counters();
            write_stats_json(
                out,
                n,
                counters.hits,
                counters.misses,
                counters.coalesced,
                counters.in_flight,
                shared.cache.len() as u64,
                shared.cache.bytes(),
            );
        }
        Err(e) => {
            let _span = shared.trace.span("request");
            let n = shared.requests.fetch_add(1, Ordering::SeqCst) + 1;
            shared.trace.counter("requests", n);
            write_error_json(out, &e);
        }
    }
}

/// Answer a frontier-family request from a Pareto point set (cached or
/// fresh): select the cheapest point that fits `max_memory_bytes` (the
/// min-time point when unconstrained), falling back to an
/// `"infeasible": true` response when nothing fits. The selection runs at
/// response time, never at search time — that is what lets one cached
/// frontier serve every budget variant of the same search.
fn write_frontier_from_points(
    req: &Request,
    key: u64,
    cached: bool,
    points: &[FrontierPoint],
    report_json: &str,
    out: &mut String,
) {
    let picked = match req.max_memory_bytes {
        Some(budget) => points.iter().find(|p| p.memory_bytes <= budget),
        None => points.first(),
    };
    let min_memory_bytes = points.last().map_or(0, |p| p.memory_bytes);
    write_frontier_response_json(
        out,
        key,
        cached,
        picked.map(|p| (p.cost, p.memory_bytes, p.config_ids.as_slice())),
        min_memory_bytes,
        req.frontier.then_some(points),
        report_json,
    );
}

/// Answer one parsed search request into `out`: consult the sharded cache
/// (possibly coalescing onto an identical in-flight search), run a fresh
/// search on a miss. Also the prewarm path — zoo entries are filled
/// through exactly this lookup.
///
/// Frontier-family requests (`max_memory_bytes` / `frontier`) run the
/// frontier DP *unconstrained* and cache the whole Pareto set under a key
/// that excludes the budget; the budget is applied by point selection on
/// the way out, so follow-up queries with any other budget are cache hits.
pub(crate) fn answer_search(req: &Request, shared: &Shared, out: &mut String) {
    let graph = match pase_models::build_named(&req.model, req.devices, req.weak_scaling) {
        Ok(g) => g,
        Err(msg) => return write_error_json(out, &pase_core::Error::Protocol(msg)),
    };
    let rule = ConfigRule::new(req.devices);
    let wants_frontier = req.wants_frontier();
    let key = strategy_cache_key(
        &graph,
        &rule,
        &req.machine,
        req.prune.then_some(req.epsilon),
        wants_frontier,
    );

    let guard = match shared.cache.lookup(key) {
        Lookup::Hit(entry) | Lookup::Coalesced(entry) => {
            let counters = shared.cache.counters();
            shared.trace.counter("cache_hits", counters.hits);
            shared.trace.counter("coalesced", counters.coalesced);
            if wants_frontier {
                return write_frontier_from_points(
                    req,
                    key,
                    true,
                    &entry.frontier,
                    &entry.report_json,
                    out,
                );
            }
            return write_response_json(
                out,
                key,
                true,
                Some(entry.cost),
                Some(&entry.config_ids),
                &entry.report_json,
            );
        }
        Lookup::Miss(guard) => {
            shared
                .trace
                .counter("cache_misses", shared.cache.counters().misses);
            guard
        }
    };

    // The effective wall clock is the tightest of the client's budget, the
    // client's explicit deadline, and the server's deadline policy.
    let mut budget = req.budget;
    budget.max_time = budget
        .max_time
        .min(req.deadline.unwrap_or(shared.cfg.deadline));

    let trace = Trace::new();
    let mut search = Search::new(&graph)
        .rule(rule)
        .mesh(req.machine.clone())
        .budget(budget)
        .prune_gate(req.prune_gate)
        .trace(&trace);
    if req.prune {
        search = search.pruning(PruneOptions {
            epsilon: req.epsilon,
            ..PruneOptions::default()
        });
    }
    if let Some(kernel) = req.dp_kernel {
        search = search.dp_kernel(kernel);
    }
    if wants_frontier {
        // Deliberately only `.frontier()`, never `.max_memory_bytes()`:
        // the engine computes the full Pareto set and the budget is
        // applied per-response above, keeping the cached entry
        // budget-agnostic.
        search = search.frontier();
    }
    let run = search.run();
    let report = SearchReport::new(&req.model, req.devices, run.outcome(), Some(&trace)).to_json();

    match run.outcome() {
        SearchOutcome::Found(r) => {
            let frontier = run
                .frontier()
                .map_or_else(Vec::new, |f| f.points().to_vec());
            let entry = CacheEntry {
                model: req.model.clone(),
                devices: req.devices,
                cost: r.cost,
                config_ids: r.config_ids.clone(),
                frontier: frontier.clone(),
                report_json: report.clone(),
            };
            if wants_frontier {
                write_frontier_from_points(req, key, false, &frontier, &report, out);
            } else {
                write_response_json(out, key, false, Some(r.cost), Some(&r.config_ids), &report);
            }
            // Fulfilling releases any coalesced waiters; failed outcomes
            // instead drop the guard below, letting a waiter retry with
            // its own deadline.
            if let Err(e) = guard.fulfill(entry) {
                // Persistence is best-effort: the response is still served
                // from the in-memory entry.
                eprintln!("pase-serve: cache persistence failed: {e}");
            }
        }
        _ => write_response_json(out, key, false, None, None, &report),
    }
}

static SIGINT_FLAG: AtomicBool = AtomicBool::new(false);

/// Install a SIGINT (ctrl-c) handler that triggers `handle` — the handler
/// itself only sets a static flag (async-signal-safe); a forwarder thread
/// relays it to the [`ShutdownHandle`]. Call at most once per process.
#[cfg(unix)]
pub fn install_sigint(handle: ShutdownHandle) {
    extern "C" fn on_sigint(_sig: i32) {
        SIGINT_FLAG.store(true, Ordering::SeqCst);
    }
    extern "C" {
        // POSIX signal(2); libc is always linked into std binaries on unix,
        // so no external crate is needed.
        fn signal(signum: i32, handler: usize) -> usize;
    }
    const SIGINT: i32 = 2;
    let f: extern "C" fn(i32) = on_sigint;
    unsafe {
        signal(SIGINT, f as usize);
    }
    std::thread::spawn(move || loop {
        if SIGINT_FLAG.load(Ordering::SeqCst) {
            handle.shutdown();
            break;
        }
        std::thread::sleep(POLL);
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use pase_obs::json;
    use std::io::{BufRead, BufReader};

    fn start(
        cfg: ServerConfig,
    ) -> (
        SocketAddr,
        ShutdownHandle,
        std::thread::JoinHandle<ServeSummary>,
    ) {
        let server = Server::bind(cfg).expect("bind");
        let addr = server.local_addr().expect("addr");
        let handle = server.shutdown_handle();
        let join = std::thread::spawn(move || server.run().expect("run"));
        (addr, handle, join)
    }

    fn query(addr: SocketAddr, line: &str) -> json::Value {
        let mut stream = TcpStream::connect(addr).expect("connect");
        stream.write_all(line.as_bytes()).unwrap();
        stream.write_all(b"\n").unwrap();
        let mut reader = BufReader::new(stream);
        let mut response = String::new();
        reader.read_line(&mut response).expect("response");
        json::parse(&response).expect("valid response JSON")
    }

    const MLP: &str =
        "{\"model\": \"mlp\", \"devices\": 4, \"machine\": \"test\", \"weak_scaling\": false}";

    #[test]
    fn concurrent_clients_all_get_answers() {
        let (addr, handle, join) = start(ServerConfig {
            workers: 3,
            ..ServerConfig::default()
        });
        let clients: Vec<_> = (0..3)
            .map(|_| std::thread::spawn(move || query(addr, MLP)))
            .collect();
        let responses: Vec<json::Value> = clients.into_iter().map(|c| c.join().unwrap()).collect();
        let costs: Vec<f64> = responses
            .iter()
            .map(|v| v.get("cost").and_then(|c| c.as_f64()).expect("a cost"))
            .collect();
        assert!(costs.windows(2).all(|w| w[0] == w[1]), "{costs:?}");
        for v in &responses {
            assert_eq!(
                v.get("report")
                    .and_then(|r| r.get("outcome"))
                    .and_then(|o| o.as_str()),
                Some("ok")
            );
            assert!(v.get("strategy").and_then(|s| s.as_array()).is_some());
        }
        handle.shutdown();
        let summary = join.join().unwrap();
        assert_eq!(summary.requests, 3);
        // All three raced the same key: exactly one search (singleflight),
        // the rest hit the cache or coalesced onto the in-flight search
        // depending on interleaving.
        assert_eq!(
            summary.cache_hits + summary.cache_misses + summary.coalesced,
            3
        );
        assert_eq!(summary.cache_misses, 1, "{summary:?}");
    }

    #[test]
    fn repeated_query_hits_the_cache_with_identical_strategy() {
        let (addr, handle, join) = start(ServerConfig::default());
        let mut stream = TcpStream::connect(addr).expect("connect");
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        let mut ask = || {
            stream.write_all(MLP.as_bytes()).unwrap();
            stream.write_all(b"\n").unwrap();
            let mut response = String::new();
            reader.read_line(&mut response).unwrap();
            json::parse(&response).expect("valid response JSON")
        };
        let first = ask();
        let second = ask();
        assert_eq!(first.get("cached").and_then(|c| c.as_bool()), Some(false));
        assert_eq!(second.get("cached").and_then(|c| c.as_bool()), Some(true));
        assert_eq!(first.get("strategy"), second.get("strategy"));
        assert_eq!(first.get("cost"), second.get("cost"));
        assert_eq!(first.get("cache_key"), second.get("cache_key"));
        drop(stream);
        handle.shutdown();
        let summary = join.join().unwrap();
        assert_eq!(summary.cache_hits, 1);
        assert_eq!(summary.cache_misses, 1);
    }

    #[test]
    fn per_request_deadline_becomes_a_timeout_outcome() {
        let (addr, handle, join) = start(ServerConfig::default());
        let v = query(
            addr,
            "{\"model\": \"mlp\", \"devices\": 4, \"machine\": \"test\", \"deadline_ms\": 0}",
        );
        assert_eq!(
            v.get("report")
                .and_then(|r| r.get("outcome"))
                .and_then(|o| o.as_str()),
            Some("timeout")
        );
        assert!(v.get("cost").unwrap().as_f64().is_none());
        handle.shutdown();
        join.join().unwrap();
    }

    #[test]
    fn malformed_and_unknown_requests_get_error_responses() {
        let (addr, handle, join) = start(ServerConfig::default());
        let v = query(addr, "{\"model\": \"gpt5\"}");
        assert_eq!(
            v.get("error").and_then(|e| e.as_str()),
            Some("unknown model 'gpt5'")
        );
        let v = query(addr, "not json at all");
        assert!(v
            .get("error")
            .and_then(|e| e.as_str())
            .expect("an error")
            .starts_with("protocol:"));
        handle.shutdown();
        join.join().unwrap();
    }

    #[test]
    fn oversized_request_line_gets_an_error_and_the_connection_closes() {
        let (addr, handle, join) = start(ServerConfig::default());
        let mut stream = TcpStream::connect(addr).expect("connect");
        // One byte over the cap, no newline: the server must answer with a
        // protocol error instead of buffering without bound.
        let big = vec![b'x'; MAX_LINE + 1];
        stream.write_all(&big).unwrap();
        let mut reader = BufReader::new(stream);
        let mut response = String::new();
        reader.read_line(&mut response).expect("error response");
        let v = json::parse(&response).expect("valid JSON");
        assert!(v
            .get("error")
            .and_then(|e| e.as_str())
            .expect("an error")
            .contains("exceeds"));
        let mut rest = String::new();
        assert_eq!(
            reader.read_line(&mut rest).unwrap(),
            0,
            "closed after error"
        );
        handle.shutdown();
        join.join().unwrap();
    }

    #[test]
    fn idle_connections_are_closed_after_the_idle_timeout() {
        let (addr, handle, join) = start(ServerConfig {
            idle_timeout: Duration::from_millis(60),
            ..ServerConfig::default()
        });
        let stream = TcpStream::connect(addr).expect("connect");
        let mut reader = BufReader::new(stream);
        let mut line = String::new();
        // A client that never sends a request must not pin the worker
        // forever: the server closes the connection (EOF) on its own.
        assert_eq!(reader.read_line(&mut line).expect("eof"), 0);
        handle.shutdown();
        join.join().unwrap();
    }

    #[test]
    fn graceful_shutdown_drains_in_flight_requests() {
        let (addr, handle, join) = start(ServerConfig::default());
        let mut stream = TcpStream::connect(addr).expect("connect");
        stream.write_all(MLP.as_bytes()).unwrap();
        stream.write_all(b"\n").unwrap();
        // Shut down while the request is (at latest) buffered in the
        // socket: the drain guarantee says it must still be answered.
        handle.shutdown();
        let mut reader = BufReader::new(stream);
        let mut response = String::new();
        reader.read_line(&mut response).expect("drained response");
        let v = json::parse(&response).expect("valid JSON");
        assert!(v.get("cost").and_then(|c| c.as_f64()).is_some());
        let summary = join.join().unwrap();
        assert_eq!(summary.requests, 1);
    }

    #[test]
    fn stats_request_reports_server_counters() {
        let (addr, handle, join) = start(ServerConfig::default());
        query(addr, MLP);
        query(addr, MLP); // hit
        let v = query(addr, "{\"stats\": true}");
        let stats = v.get("stats").expect("a stats object");
        let field = |name: &str| stats.get(name).and_then(|x| x.as_u64()).expect(name);
        assert_eq!(field("requests"), 3, "the stats probe itself is counted");
        assert_eq!(field("cache_hits"), 1);
        assert_eq!(field("cache_misses"), 1);
        assert_eq!(field("coalesced"), 0);
        assert_eq!(field("in_flight"), 0);
        assert_eq!(field("entries"), 1, "one cached strategy");
        handle.shutdown();
        join.join().unwrap();
    }

    #[test]
    fn one_cached_frontier_serves_every_budget_variant() {
        let (addr, handle, join) = start(ServerConfig::default());

        // The scalar optimum, for the bit-parity check.
        let scalar = query(addr, MLP);
        let scalar_cost = scalar.get("cost").and_then(|c| c.as_f64()).expect("cost");

        // A frontier query: full Pareto set, min-time point selected.
        let f = query(
            addr,
            "{\"model\": \"mlp\", \"devices\": 4, \"machine\": \"test\", \
             \"weak_scaling\": false, \"frontier\": true}",
        );
        assert_eq!(f.get("cached").and_then(|c| c.as_bool()), Some(false));
        assert_eq!(f.get("cost").and_then(|c| c.as_f64()), Some(scalar_cost));
        assert_eq!(f.get("infeasible").and_then(|i| i.as_bool()), Some(false));
        let points = f.get("frontier").and_then(|x| x.as_array()).expect("array");
        assert!(!points.is_empty());
        let min_mem = points
            .last()
            .and_then(|p| p.get("memory_bytes"))
            .and_then(|m| m.as_u64())
            .expect("memory");
        let max_mem = f
            .get("peak_memory_bytes")
            .and_then(|m| m.as_u64())
            .expect("peak memory");

        // Two different memory budgets: both must be served from the one
        // cached frontier — no new DP fill, same cache entry.
        let generous = query(
            addr,
            &format!(
                "{{\"model\": \"mlp\", \"devices\": 4, \"machine\": \"test\", \
                 \"weak_scaling\": false, \"max_memory_bytes\": {}}}",
                max_mem + 1
            ),
        );
        assert_eq!(generous.get("cached").and_then(|c| c.as_bool()), Some(true));
        assert_eq!(
            generous.get("cost").and_then(|c| c.as_f64()),
            Some(scalar_cost)
        );
        assert_eq!(generous.get("cache_key"), f.get("cache_key"));
        assert!(generous.get("frontier").is_none(), "not asked for");

        let tight = query(
            addr,
            &format!(
                "{{\"model\": \"mlp\", \"devices\": 4, \"machine\": \"test\", \
                 \"weak_scaling\": false, \"max_memory_bytes\": {min_mem}}}"
            ),
        );
        assert_eq!(tight.get("cached").and_then(|c| c.as_bool()), Some(true));
        assert_eq!(tight.get("cache_key"), f.get("cache_key"));
        assert_eq!(
            tight.get("peak_memory_bytes").and_then(|m| m.as_u64()),
            Some(min_mem),
            "tightest budget selects the min-memory point"
        );

        // An unsatisfiable budget is answered from cache too, as
        // infeasible with the frontier's memory floor.
        let impossible = query(
            addr,
            &format!(
                "{{\"model\": \"mlp\", \"devices\": 4, \"machine\": \"test\", \
                 \"weak_scaling\": false, \"max_memory_bytes\": {}}}",
                min_mem - 1
            ),
        );
        assert_eq!(
            impossible.get("cached").and_then(|c| c.as_bool()),
            Some(true)
        );
        assert_eq!(
            impossible.get("infeasible").and_then(|i| i.as_bool()),
            Some(true)
        );
        assert!(impossible.get("cost").unwrap().as_f64().is_none());
        assert_eq!(
            impossible.get("min_memory_bytes").and_then(|m| m.as_u64()),
            Some(min_mem)
        );

        handle.shutdown();
        let summary = join.join().unwrap();
        // Five requests, two searches: the scalar one and the single
        // frontier fill all budget variants shared.
        assert_eq!(summary.requests, 5);
        assert_eq!(summary.cache_misses, 2, "{summary:?}");
        assert_eq!(summary.cache_hits, 3, "{summary:?}");
    }

    #[test]
    fn stats_report_the_cache_byte_accounting() {
        let (addr, handle, join) = start(ServerConfig::default());
        query(addr, MLP);
        let v = query(addr, "{\"stats\": true}");
        let bytes = v
            .get("stats")
            .and_then(|s| s.get("cache_bytes"))
            .and_then(|b| b.as_u64())
            .expect("cache_bytes");
        assert!(bytes > 0, "one resident entry must be accounted");
        handle.shutdown();
        join.join().unwrap();
    }

    #[test]
    fn both_front_ends_serve_identical_answers() {
        let mut answers = Vec::new();
        for frontend in [FrontEnd::Threaded, FrontEnd::default()] {
            let (addr, handle, join) = start(ServerConfig {
                frontend,
                ..ServerConfig::default()
            });
            let v = query(addr, MLP);
            assert_eq!(
                v.get("cached").and_then(|c| c.as_bool()),
                Some(false),
                "{frontend:?}"
            );
            answers.push((v.get("cost").cloned(), v.get("strategy").cloned()));
            handle.shutdown();
            let summary = join.join().unwrap();
            assert_eq!(summary.requests, 1, "{frontend:?}");
        }
        assert_eq!(answers[0], answers[1]);
    }

    #[test]
    fn inline_machine_objects_round_trip_and_cache_per_mesh() {
        let (addr, handle, join) = start(ServerConfig::default());
        let flat = "{\"model\": \"mlp\", \"devices\": 4, \"weak_scaling\": false, \
             \"machine\": {\"name\": \"t\", \"peak_flops\": 1e12, \
             \"link_bandwidth\": 1e9}}";
        let tiered = "{\"model\": \"mlp\", \"devices\": 4, \"weak_scaling\": false, \
             \"machine\": {\"name\": \"t\", \"axes\": [\
             {\"name\": \"gpu\", \"size\": 2, \"bandwidth\": 1e9, \
              \"peak_flops\": 1e12, \"alpha\": 5e-6}, \
             {\"name\": \"node\", \"size\": 2, \"bandwidth\": 1e8, \
              \"peak_flops\": 1e12, \"alpha\": 1.5e-5}]}}";
        let v_flat = query(addr, flat);
        let v_tier = query(addr, tiered);
        for v in [&v_flat, &v_tier] {
            assert!(v.get("cost").and_then(|c| c.as_f64()).is_some(), "a cost");
            assert_eq!(v.get("cached").and_then(|c| c.as_bool()), Some(false));
        }
        // Distinct meshes are distinct cache entries; a repeat of either
        // mesh hits its own entry.
        assert_ne!(v_flat.get("cache_key"), v_tier.get("cache_key"));
        let again = query(addr, tiered);
        assert_eq!(again.get("cached").and_then(|c| c.as_bool()), Some(true));
        assert_eq!(again.get("cache_key"), v_tier.get("cache_key"));
        // The slower inter-node fabric cannot make the optimum cheaper.
        let c_flat = v_flat.get("cost").and_then(|c| c.as_f64()).unwrap();
        let c_tier = v_tier.get("cost").and_then(|c| c.as_f64()).unwrap();
        assert!(c_tier >= c_flat, "flat {c_flat} vs tiered {c_tier}");
        handle.shutdown();
        join.join().unwrap();
    }

    #[test]
    fn hostile_machine_requests_get_protocol_errors_not_a_dead_worker() {
        let (addr, handle, join) = start(ServerConfig::default());
        // Unknown profile name: the error lists the registry.
        let v = query(addr, "{\"model\": \"mlp\", \"machine\": \"abacus\"}");
        let err = v.get("error").and_then(|e| e.as_str()).expect("an error");
        assert!(err.contains("known profiles"), "{err}");
        // Zero-bandwidth inline machine: rejected at the parse boundary.
        let v = query(
            addr,
            "{\"model\": \"mlp\", \"machine\": {\"name\": \"x\", \
             \"peak_flops\": 1.0, \"link_bandwidth\": 0.0}}",
        );
        let err = v.get("error").and_then(|e| e.as_str()).expect("an error");
        assert!(err.contains("bandwidth"), "{err}");
        // The worker is still alive and answers a good request.
        let v = query(addr, MLP);
        assert!(v.get("cost").and_then(|c| c.as_f64()).is_some());
        handle.shutdown();
        let summary = join.join().unwrap();
        assert_eq!(summary.cache_misses, 1, "only the good request searched");
    }

    #[test]
    fn batch_requests_are_answered_in_order_as_one_array() {
        let (addr, handle, join) = start(ServerConfig::default());
        let v = query(
            addr,
            "{\"batch\": [\
             {\"model\": \"mlp\", \"devices\": 4, \"machine\": \"test\", \"weak_scaling\": false},\
             {\"model\": \"mlp\", \"devices\": 4, \"machine\": \"test\", \"weak_scaling\": false},\
             {\"model\": \"mlp\", \"devices\": 2, \"machine\": \"test\", \"weak_scaling\": false}\
             ]}",
        );
        let batch = v.get("batch").and_then(|b| b.as_array()).expect("an array");
        assert_eq!(batch.len(), 3);
        // Identical consecutive queries: the second is served from cache.
        assert_eq!(
            batch[0].get("cached").and_then(|c| c.as_bool()),
            Some(false)
        );
        assert_eq!(batch[1].get("cached").and_then(|c| c.as_bool()), Some(true));
        assert_eq!(batch[0].get("cost"), batch[1].get("cost"));
        // The third is a different key, answered in position.
        assert_eq!(
            batch[2].get("cached").and_then(|c| c.as_bool()),
            Some(false)
        );
        assert_ne!(batch[0].get("cache_key"), batch[2].get("cache_key"));
        handle.shutdown();
        let summary = join.join().unwrap();
        assert_eq!(summary.requests, 3, "each batch element is a request");
        assert_eq!(summary.cache_hits, 1);
        assert_eq!(summary.cache_misses, 2);
    }

    #[test]
    fn malformed_batch_element_rejects_the_whole_line() {
        let (addr, handle, join) = start(ServerConfig::default());
        let v = query(
            addr,
            "{\"batch\": [{\"model\": \"mlp\", \"machine\": \"test\"}, {\"model\": \"gpt5\"}]}",
        );
        let err = v.get("error").and_then(|e| e.as_str()).expect("an error");
        assert!(err.contains("batch[1]"), "{err}");
        handle.shutdown();
        let summary = join.join().unwrap();
        assert_eq!(summary.cache_misses, 0, "no element was searched");
    }

    #[test]
    fn prewarmed_server_answers_its_first_query_as_a_hit() {
        let (addr, handle, join) = start(ServerConfig {
            prewarm: Some("mlp:2,4:test".into()),
            ..ServerConfig::default()
        });
        // Wire-default options (weak scaling on, no pruning) — the same
        // cells the prewarm filled.
        let v = query(
            addr,
            "{\"model\": \"mlp\", \"devices\": 4, \"machine\": \"test\"}",
        );
        assert_eq!(v.get("cached").and_then(|c| c.as_bool()), Some(true));
        handle.shutdown();
        let summary = join.join().unwrap();
        assert_eq!(summary.prewarmed, 2);
        assert_eq!(summary.cache_hits, 1);
        assert_eq!(summary.cache_misses, 2, "the prewarm searches");
    }

    #[test]
    fn bad_prewarm_spec_fails_bind_run_with_invalid_input() {
        let server = Server::bind(ServerConfig {
            prewarm: Some("gpt5:4".into()),
            ..ServerConfig::default()
        })
        .expect("bind");
        let err = server.run().expect_err("bad spec must not serve");
        assert_eq!(err.kind(), ErrorKind::InvalidInput);
        assert!(err.to_string().contains("gpt5"), "{err}");
    }

    #[test]
    fn shard_count_follows_the_worker_pool_unless_pinned() {
        for (workers, shards, expect) in [(2, 0, 2), (5, 0, 8), (64, 0, 16), (2, 4, 4)] {
            let server = Server::bind(ServerConfig {
                workers,
                cache_shards: shards,
                ..ServerConfig::default()
            })
            .expect("bind");
            assert_eq!(
                server.shared.cache.shard_count(),
                expect,
                "workers={workers} cache_shards={shards}"
            );
        }
    }

    #[test]
    fn request_latency_spans_and_counters_are_recorded() {
        let server = Server::bind(ServerConfig::default()).expect("bind");
        let addr = server.local_addr().expect("addr");
        let handle = server.shutdown_handle();
        let shared = Arc::clone(&server.shared);
        let join = std::thread::spawn(move || server.run().expect("run"));
        query(addr, MLP);
        query(addr, MLP);
        handle.shutdown();
        join.join().unwrap();
        let spans = shared.trace.spans();
        assert_eq!(spans.iter().filter(|s| s.name == "request").count(), 2);
        let counters = shared.trace.counters();
        assert!(counters
            .iter()
            .any(|c| c.name == "requests" && c.value == 2));
        assert!(counters
            .iter()
            .any(|c| c.name == "cache_hits" && c.value == 1));
        assert!(counters
            .iter()
            .any(|c| c.name == "cache_misses" && c.value == 1));
    }
}
