//! Content-addressed strategy cache.
//!
//! A strategy search is a pure function of (graph structure, iteration
//! spaces, [`ConfigRule`], [`DeviceMesh`], prune settings) — node *names*,
//! mesh/axis names, and trace/parallelism knobs do not influence the
//! optimum. The cache key is therefore a canonical 64-bit FNV-1a hash
//! over exactly those inputs ([`strategy_cache_key`]); two requests that
//! differ only in naming or scheduling share an entry, while any change
//! to a tensor extent, a mesh axis (size, α, bandwidth, FLOPS), the
//! device count, or the prune ε produces a different key — distinct mesh
//! shapes over the same rates are distinct searches.
//!
//! [`StrategyCache`] keeps entries in a bounded in-memory LRU and can
//! additionally persist them as one JSON file per key under a cache
//! directory. On-disk entries carry the workspace-wide
//! [`pase_core::SCHEMA_VERSION`] and are rejected (treated as misses) when
//! the version does not match.

use pase_core::{Error, FrontierPoint, SCHEMA_VERSION};
use pase_cost::{ConfigRule, DeviceMesh};
use pase_graph::{Graph, OpKind};
use pase_obs::json;
use std::collections::HashMap;
use std::fmt::Write as _;
use std::path::{Path, PathBuf};

/// FNV-1a 64-bit, fed with a canonical byte serialization. Deterministic
/// across runs and platforms (everything is hashed in little-endian /
/// IEEE-754 bit form), unlike `DefaultHasher`, whose seeds vary per
/// process — a content *address* must be stable enough to name disk files.
struct Fnv(u64);

impl Fnv {
    fn new() -> Self {
        Fnv(0xcbf2_9ce4_8422_2325)
    }

    fn bytes(&mut self, b: &[u8]) {
        for &x in b {
            self.0 ^= u64::from(x);
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }

    fn u64(&mut self, v: u64) {
        self.bytes(&v.to_le_bytes());
    }

    fn f64(&mut self, v: f64) {
        self.u64(v.to_bits());
    }

    /// Tag + payload, so adjacent optional fields cannot alias.
    fn opt_u64(&mut self, v: Option<u64>) {
        match v {
            Some(v) => {
                self.u64(1);
                self.u64(v);
            }
            None => self.u64(0),
        }
    }
}

/// Canonical hash of everything a search's result depends on. See the
/// module docs for what is included; notably node names are *not*.
///
/// `frontier` distinguishes frontier-family entries (which carry the full
/// Pareto set) from scalar ones. The request's `max_memory_bytes` budget is
/// deliberately **not** hashed: a cached frontier answers every budget
/// variant of the same search by point selection, so all budgets share one
/// entry and one DP fill.
pub fn strategy_cache_key(
    graph: &Graph,
    rule: &ConfigRule,
    machine: &DeviceMesh,
    prune_epsilon: Option<f64>,
    frontier: bool,
) -> u64 {
    let mut h = Fnv::new();
    h.u64(SCHEMA_VERSION);

    // Graph structure and iteration spaces (name-blind).
    h.u64(graph.len() as u64);
    for node in graph.nodes() {
        hash_op(&mut h, &node.op);
        h.u64(node.iter_space.len() as u64);
        for d in &node.iter_space {
            h.u64(d.size);
            h.u64(d.role as u64);
            h.u64(u64::from(d.splittable));
        }
        h.u64(node.inputs.len() as u64);
        for t in node.inputs.iter().chain([&node.output]).chain(&node.params) {
            h.u64(t.dims.len() as u64);
            for &dim in &t.dims {
                h.u64(u64::from(dim));
            }
            for &s in &t.sizes {
                h.u64(s);
            }
            h.u64(u64::from(t.elem_bytes));
        }
        h.u64(node.params.len() as u64);
    }
    h.u64(graph.edges().len() as u64);
    for e in graph.edges() {
        h.u64(e.src.index() as u64);
        h.u64(e.dst.index() as u64);
        h.u64(u64::from(e.dst_slot));
    }

    // Configuration-enumeration rule (includes the device count p).
    h.u64(u64::from(rule.devices));
    h.u64(u64::from(rule.require_all_devices));
    h.opt_u64(rule.max_split_per_dim.map(u64::from));
    match rule.memory_limit {
        Some(b) => {
            h.u64(1);
            h.f64(b);
        }
        None => h.u64(0),
    }

    // Device mesh: every axis's shape and rates enter the cost model;
    // mesh and axis names do not.
    h.u64(machine.axes.len() as u64);
    for a in &machine.axes {
        h.u64(u64::from(a.size));
        h.f64(a.alpha);
        h.f64(a.bandwidth);
        h.f64(a.peak_flops);
    }

    // Prune settings (ε = 0 is exact but still a different search space
    // reduction pipeline, so it is distinguished from "no pruning").
    match prune_epsilon {
        Some(eps) => {
            h.u64(1);
            h.f64(eps);
        }
        None => h.u64(0),
    }

    // Frontier-family entries store a different payload (the full Pareto
    // set) and must not alias scalar entries for the same search.
    h.u64(u64::from(frontier));
    h.0
}

fn hash_op(h: &mut Fnv, op: &OpKind) {
    match op {
        OpKind::Conv2d {
            kernel_h,
            kernel_w,
            stride,
        } => {
            h.u64(0);
            h.u64(u64::from(*kernel_h));
            h.u64(u64::from(*kernel_w));
            h.u64(u64::from(*stride));
        }
        OpKind::Pool2d { kernel, stride } => {
            h.u64(1);
            h.u64(u64::from(*kernel));
            h.u64(u64::from(*stride));
        }
        OpKind::FullyConnected => h.u64(2),
        OpKind::Matmul => h.u64(3),
        OpKind::Softmax => h.u64(4),
        OpKind::Embedding => h.u64(5),
        OpKind::Lstm { layers } => {
            h.u64(6);
            h.u64(u64::from(*layers));
        }
        OpKind::Attention => h.u64(7),
        OpKind::FeedForward => h.u64(8),
        OpKind::LayerNorm => h.u64(9),
        OpKind::BatchNorm => h.u64(10),
        OpKind::Elementwise { flops_per_point } => {
            h.u64(11);
            h.f64(*flops_per_point);
        }
        OpKind::Concat => h.u64(12),
    }
}

/// One cached search result: the optimum plus the full report JSON that was
/// served for it, so a cache hit replays a byte-identical report.
#[derive(Clone, Debug, PartialEq)]
pub struct CacheEntry {
    /// Model name of the originating request (informational).
    pub model: String,
    /// Device count of the originating request (informational).
    pub devices: u32,
    /// The optimal cost in FLOP units.
    pub cost: f64,
    /// The argmin strategy as per-node configuration ids.
    pub config_ids: Vec<u16>,
    /// The `(step time, peak memory)` Pareto frontier, sorted by
    /// increasing cost / strictly decreasing memory — empty for scalar
    /// (non-frontier) entries. A populated frontier lets the server answer
    /// any `max_memory_bytes` variant of the search by point selection,
    /// without another DP fill.
    pub frontier: Vec<FrontierPoint>,
    /// The `SearchReport` JSON served on the original miss.
    pub report_json: String,
}

impl CacheEntry {
    /// Serialize as the on-disk JSON document (schema-versioned).
    pub fn to_json(&self, key: u64) -> String {
        let mut out = String::with_capacity(256 + self.report_json.len());
        let _ = write!(
            out,
            "{{\"schema_version\": {SCHEMA_VERSION}, \"key\": \"{key:016x}\", \
             \"model\": \"{}\", \"devices\": {}, \"cost\": {}, \"config_ids\": [",
            json::escape(&self.model),
            self.devices,
            json::number(self.cost),
        );
        for (i, id) in self.config_ids.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            let _ = write!(out, "{id}");
        }
        // Each frontier point is a compact [cost, memory_bytes, [ids...]]
        // triple; the array is empty for scalar entries.
        out.push_str("], \"frontier\": [");
        for (i, p) in self.frontier.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            let _ = write!(out, "[{}, {}, [", json::number(p.cost), p.memory_bytes);
            for (j, id) in p.config_ids.iter().enumerate() {
                if j > 0 {
                    out.push_str(", ");
                }
                let _ = write!(out, "{id}");
            }
            out.push_str("]]");
        }
        // The report is embedded as an escaped string, not spliced as an
        // object: the entry parser then never depends on the report's
        // internal shape.
        let _ = write!(
            out,
            "], \"report\": \"{}\"}}",
            json::escape(&self.report_json)
        );
        out
    }

    /// Approximate heap footprint of this entry, used for the cache's
    /// byte-weighted accounting. An estimate (struct size + owned buffers),
    /// not an allocator-exact measurement — it only needs to scale with
    /// the real cost so large frontier entries are charged as such.
    pub fn approx_bytes(&self) -> u64 {
        let frontier: usize = self
            .frontier
            .iter()
            .map(|p| std::mem::size_of::<FrontierPoint>() + 2 * p.config_ids.len())
            .sum();
        (std::mem::size_of::<Self>()
            + self.model.len()
            + 2 * self.config_ids.len()
            + frontier
            + self.report_json.len()) as u64
    }

    /// Parse an on-disk JSON document, rejecting unknown schema versions
    /// ([`Error::SchemaVersion`]) and malformed documents
    /// ([`Error::Protocol`]).
    pub fn from_json(src: &str) -> Result<(u64, Self), Error> {
        let v = json::parse(src).map_err(Error::Protocol)?;
        let version = v
            .get("schema_version")
            .and_then(|x| x.as_u64())
            .ok_or_else(|| Error::Protocol("cache entry missing schema_version".into()))?;
        if version != SCHEMA_VERSION {
            return Err(Error::SchemaVersion {
                found: version,
                expected: SCHEMA_VERSION,
            });
        }
        let field = |name: &str| {
            v.get(name)
                .ok_or_else(|| Error::Protocol(format!("cache entry missing {name}")))
        };
        let key = u64::from_str_radix(
            field("key")?
                .as_str()
                .ok_or_else(|| Error::Protocol("cache key must be a hex string".into()))?,
            16,
        )
        .map_err(|e| Error::Protocol(format!("bad cache key: {e}")))?;
        let ids_of = |x: &json::Value| {
            x.as_array()
                .ok_or_else(|| Error::Protocol("config_ids must be an array".into()))?
                .iter()
                .map(|x| {
                    x.as_u64()
                        .and_then(|v| u16::try_from(v).ok())
                        .ok_or_else(|| Error::Protocol("config id out of range".into()))
                })
                .collect::<Result<Vec<u16>, Error>>()
        };
        let config_ids = ids_of(field("config_ids")?)?;
        let frontier = field("frontier")?
            .as_array()
            .ok_or_else(|| Error::Protocol("frontier must be an array".into()))?
            .iter()
            .map(|p| {
                let triple = p.as_array().filter(|t| t.len() == 3).ok_or_else(|| {
                    Error::Protocol("frontier point must be [cost, bytes, ids]".into())
                })?;
                Ok(FrontierPoint {
                    cost: triple[0]
                        .as_f64()
                        .ok_or_else(|| Error::Protocol("frontier cost must be a number".into()))?,
                    memory_bytes: triple[1].as_u64().ok_or_else(|| {
                        Error::Protocol("frontier memory_bytes out of range".into())
                    })?,
                    config_ids: ids_of(&triple[2])?,
                })
            })
            .collect::<Result<Vec<FrontierPoint>, Error>>()?;
        Ok((
            key,
            CacheEntry {
                model: field("model")?
                    .as_str()
                    .ok_or_else(|| Error::Protocol("model must be a string".into()))?
                    .to_string(),
                devices: field("devices")?
                    .as_u64()
                    .and_then(|v| u32::try_from(v).ok())
                    .ok_or_else(|| Error::Protocol("devices out of range".into()))?,
                cost: field("cost")?
                    .as_f64()
                    .ok_or_else(|| Error::Protocol("cost must be a number".into()))?,
                config_ids,
                frontier,
                report_json: field("report")?
                    .as_str()
                    .ok_or_else(|| Error::Protocol("report must be a string".into()))?
                    .to_string(),
            },
        ))
    }
}

struct Slot {
    entry: CacheEntry,
    last_used: u64,
    bytes: u64,
}

/// Bounded LRU of [`CacheEntry`]s keyed by [`strategy_cache_key`], with
/// optional one-file-per-key JSON persistence.
///
/// Two independent bounds apply: an entry-count capacity and an optional
/// byte budget ([`StrategyCache::with_max_bytes`]). Entries vary wildly in
/// size — a frontier entry for a deep model can be hundreds of times
/// larger than a scalar MLP one — so counting entries alone lets the
/// resident bytes grow unbounded; the byte budget is checked first on
/// every insert. The last remaining entry is never evicted, even when it
/// alone exceeds the byte budget.
pub struct StrategyCache {
    map: HashMap<u64, Slot>,
    capacity: usize,
    max_bytes: Option<u64>,
    bytes: u64,
    disk_dir: Option<PathBuf>,
    tick: u64,
    hits: u64,
    misses: u64,
}

impl StrategyCache {
    /// An in-memory cache holding at most `capacity` entries (≥ 1).
    pub fn new(capacity: usize) -> Self {
        Self {
            map: HashMap::new(),
            capacity: capacity.max(1),
            max_bytes: None,
            bytes: 0,
            disk_dir: None,
            tick: 0,
            hits: 0,
            misses: 0,
        }
    }

    /// Additionally bound the resident entries to roughly `max_bytes`
    /// (per [`CacheEntry::approx_bytes`]); 0 is treated as unbounded.
    pub fn with_max_bytes(mut self, max_bytes: u64) -> Self {
        self.set_max_bytes(max_bytes);
        self
    }

    /// Mutating form of [`StrategyCache::with_max_bytes`] and immediately
    /// evicts down to the new budget.
    pub fn set_max_bytes(&mut self, max_bytes: u64) {
        self.max_bytes = (max_bytes > 0).then_some(max_bytes);
        self.evict_over_budget();
    }

    /// Additionally persist entries under `dir` (created on first write)
    /// and consult it on in-memory misses.
    pub fn with_disk_dir(mut self, dir: impl Into<PathBuf>) -> Self {
        self.disk_dir = Some(dir.into());
        self
    }

    /// The persistence path for `key` under the configured disk
    /// directory, if any.
    pub fn disk_path(&self, key: u64) -> Option<PathBuf> {
        self.disk_dir
            .as_ref()
            .map(|d| d.join(format!("{key:016x}.json")))
    }

    /// Look up `key`, consulting memory first and then the disk directory.
    /// Counts a hit or a miss; a disk hit is promoted into memory.
    /// Unreadable, malformed, or wrong-schema disk entries are misses.
    pub fn get(&mut self, key: u64) -> Option<CacheEntry> {
        let entry = self.probe(key);
        match entry {
            Some(_) => self.hits += 1,
            None => self.misses += 1,
        }
        entry
    }

    /// [`StrategyCache::get`] without touching the hit/miss counters, for
    /// callers (the sharded serve-path cache) that account hits, misses,
    /// and singleflight-coalesced lookups themselves — a coalesced request
    /// re-probes the cache after waiting and must not inflate `hits`.
    /// Still refreshes LRU recency and promotes disk entries into memory.
    pub fn probe(&mut self, key: u64) -> Option<CacheEntry> {
        self.tick += 1;
        if let Some(slot) = self.map.get_mut(&key) {
            slot.last_used = self.tick;
            return Some(slot.entry.clone());
        }
        if let Some(path) = self.disk_path(key) {
            if let Ok(src) = std::fs::read_to_string(&path) {
                if let Ok((k, entry)) = CacheEntry::from_json(&src) {
                    if k == key {
                        self.insert_mem(key, entry.clone());
                        return Some(entry);
                    }
                }
            }
        }
        None
    }

    /// A genuinely non-mutating in-memory lookup: no counter updates, no
    /// LRU-recency refresh, no disk consultation or promotion. This is the
    /// inspection path — stats probes and prewarm checks must be able to
    /// ask "is this cached?" without perturbing eviction order; serving
    /// paths use [`StrategyCache::get`] / [`StrategyCache::probe`].
    pub fn peek(&self, key: u64) -> Option<CacheEntry> {
        self.map.get(&key).map(|slot| slot.entry.clone())
    }

    /// Insert `entry` under `key`, evicting the least-recently-used entry
    /// if the cache is full, and persisting to disk when configured.
    /// Disk failures are reported but the in-memory insert still happens.
    ///
    /// Callers that hold this cache behind a contended lock should instead
    /// use [`StrategyCache::put_memory`] inside the critical section and
    /// perform the disk write themselves outside it (see
    /// [`crate::sharded::MissGuard::fulfill`]) — this combined form keeps
    /// the file write inside whatever lock protects `&mut self`.
    pub fn put(&mut self, key: u64, entry: CacheEntry) -> Result<(), Error> {
        let json = self.disk_path(key).map(|path| (path, entry.to_json(key)));
        self.insert_mem(key, entry);
        if let Some((path, json)) = json {
            write_entry_file(&path, &json)?;
        }
        Ok(())
    }

    /// The in-memory half of [`StrategyCache::put`]: insert + LRU eviction
    /// only, never any I/O.
    pub fn put_memory(&mut self, key: u64, entry: CacheEntry) {
        self.insert_mem(key, entry);
    }

    fn insert_mem(&mut self, key: u64, entry: CacheEntry) {
        self.tick += 1;
        let bytes = entry.approx_bytes();
        if let Some(old) = self.map.insert(
            key,
            Slot {
                entry,
                last_used: self.tick,
                bytes,
            },
        ) {
            self.bytes -= old.bytes;
        }
        self.bytes += bytes;
        self.evict_over_budget();
    }

    /// Evict least-recently-used entries until both bounds hold: the byte
    /// budget first (the binding constraint for mixed entry sizes), then
    /// the entry-count capacity. The most recent entry always survives.
    fn evict_over_budget(&mut self) {
        while self.map.len() > 1 && self.max_bytes.is_some_and(|m| self.bytes > m) {
            self.evict_lru();
        }
        while self.map.len() > self.capacity {
            self.evict_lru();
        }
    }

    fn evict_lru(&mut self) {
        if let Some((&lru, _)) = self.map.iter().min_by_key(|(_, s)| s.last_used) {
            if let Some(slot) = self.map.remove(&lru) {
                self.bytes -= slot.bytes;
            }
        }
    }

    /// Number of in-memory entries.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Approximate resident bytes of the in-memory entries (per
    /// [`CacheEntry::approx_bytes`]).
    pub fn bytes(&self) -> u64 {
        self.bytes
    }

    /// Whether the in-memory cache is empty.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Lookups answered from cache since construction.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Lookups that fell through to a fresh search.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// The configured disk directory, if any.
    pub fn disk_dir(&self) -> Option<&Path> {
        self.disk_dir.as_deref()
    }
}

/// Persist one serialized entry, creating the cache directory on first
/// use. Kept free of `&StrategyCache` so callers can run it outside the
/// lock that guards the cache.
pub(crate) fn write_entry_file(path: &Path, json: &str) -> Result<(), Error> {
    let dir = path.parent().expect("cache file has a parent");
    std::fs::create_dir_all(dir).map_err(|source| Error::CacheIo {
        path: dir.to_path_buf(),
        source,
    })?;
    std::fs::write(path, json).map_err(|source| Error::CacheIo {
        path: path.to_path_buf(),
        source,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use pase_cost::{MachineSpec, PruneOptions};

    fn entry(tag: &str) -> CacheEntry {
        CacheEntry {
            model: tag.to_string(),
            devices: 8,
            cost: 1.5e9,
            config_ids: vec![0, 3, 1],
            frontier: vec![],
            report_json: format!("{{\"model\": \"{tag}\"}}"),
        }
    }

    fn mlp4() -> Graph {
        pase_models::build_named("mlp", 4, false).unwrap()
    }

    fn fc_pair(names: [&str; 2]) -> Graph {
        use pase_graph::{DimRole, GraphBuilder, IterDim, Node, OpKind, TensorRef};
        let fc = |name: &str, ins: usize| Node {
            name: name.into(),
            op: OpKind::FullyConnected,
            iter_space: vec![
                IterDim::new("b", 64, DimRole::Batch),
                IterDim::new("n", 128, DimRole::Param),
                IterDim::new("c", 128, DimRole::Reduction),
            ],
            inputs: (0..ins)
                .map(|_| TensorRef::new(vec![0, 2], vec![64, 128]))
                .collect(),
            output: TensorRef::new(vec![0, 1], vec![64, 128]),
            params: vec![TensorRef::new(vec![1, 2], vec![128, 128])],
        };
        let mut b = GraphBuilder::new();
        let x = b.add_node(fc(names[0], 0));
        let y = b.add_node(fc(names[1], 1));
        b.connect(x, y);
        b.build().unwrap()
    }

    #[test]
    fn key_is_deterministic_and_name_blind() {
        let g = mlp4();
        let rule = ConfigRule::new(4);
        let m = DeviceMesh::flat(&MachineSpec::test_machine());
        let k1 = strategy_cache_key(&g, &rule, &m, None, false);
        let k2 = strategy_cache_key(&g, &rule, &m, None, false);
        assert_eq!(k1, k2);

        // Renaming nodes must not change the key: the search result cannot
        // depend on display names.
        assert_eq!(
            strategy_cache_key(&fc_pair(["a", "b"]), &rule, &m, None, false),
            strategy_cache_key(&fc_pair(["x", "y"]), &rule, &m, None, false),
        );
    }

    #[test]
    fn key_separates_every_input_dimension() {
        let g = mlp4();
        let rule = ConfigRule::new(4);
        let spec = MachineSpec::test_machine();
        let m = DeviceMesh::flat(&spec);
        let base = strategy_cache_key(&g, &rule, &m, None, false);

        // Device count.
        assert_ne!(
            strategy_cache_key(&g, &ConfigRule::new(8), &m, None, false),
            base
        );
        // Rule variations.
        assert_ne!(
            strategy_cache_key(&g, &ConfigRule::new(4).allow_idle(), &m, None, false),
            base
        );
        assert_ne!(
            strategy_cache_key(&g, &ConfigRule::new(4).with_max_split(2), &m, None, false),
            base
        );
        // Machine profile.
        assert_ne!(
            strategy_cache_key(
                &g,
                &rule,
                &DeviceMesh::flat(&MachineSpec::gtx1080ti()),
                None,
                false
            ),
            base
        );
        // Mesh shape: the same profile as a two-tier cluster mesh is a
        // different search, and distinct cluster shapes stay distinct.
        let tiered = strategy_cache_key(&g, &rule, &DeviceMesh::cluster(&spec, 2, 2), None, false);
        assert_ne!(tiered, base);
        assert_ne!(
            strategy_cache_key(&g, &rule, &DeviceMesh::cluster(&spec, 4, 1), None, false),
            tiered
        );
        // Mesh and axis names are cosmetic: renaming must share the entry.
        let mut renamed = DeviceMesh::flat(&spec);
        renamed.name = "other".to_string();
        renamed.axes[0].name = "bus".to_string();
        assert_eq!(strategy_cache_key(&g, &rule, &renamed, None, false), base);
        // Prune pipeline on/off, and ε value.
        let pruned = strategy_cache_key(&g, &rule, &m, Some(0.0), false);
        assert_ne!(pruned, base);
        assert_ne!(strategy_cache_key(&g, &rule, &m, Some(0.1), false), pruned);
        // Graph contents.
        let other = pase_models::build_named("mlp", 4, true).unwrap();
        assert_ne!(strategy_cache_key(&other, &rule, &m, None, false), base);
        // Frontier-family entries never alias scalar ones.
        assert_ne!(strategy_cache_key(&g, &rule, &m, None, true), base);
        // PruneOptions default epsilon matches the exact pipeline key.
        assert_eq!(
            strategy_cache_key(&g, &rule, &m, Some(PruneOptions::default().epsilon), false),
            pruned
        );
    }

    #[test]
    fn lru_hit_miss_and_eviction() {
        let mut c = StrategyCache::new(2);
        assert!(c.get(1).is_none());
        assert_eq!(c.misses(), 1);

        c.put(1, entry("a")).unwrap();
        c.put(2, entry("b")).unwrap();
        assert_eq!(c.get(1).unwrap().model, "a");
        assert_eq!(c.hits(), 1);

        // Key 2 is now least recently used; inserting key 3 evicts it.
        c.put(3, entry("c")).unwrap();
        assert_eq!(c.len(), 2);
        assert!(c.get(2).is_none());
        assert!(c.get(1).is_some());
        assert!(c.get(3).is_some());
    }

    #[test]
    fn peek_is_non_mutating() {
        let mut c = StrategyCache::new(2);
        c.put(1, entry("a")).unwrap();
        c.put(2, entry("b")).unwrap();
        // Peeking key 1 must NOT refresh its recency: key 1 stays the LRU
        // victim and is evicted by the next insert.
        assert_eq!(c.peek(1).unwrap().model, "a");
        assert_eq!(c.hits(), 0, "peek never counts");
        c.put(3, entry("c")).unwrap();
        assert!(c.peek(1).is_none(), "peek must not have refreshed LRU");
        assert!(c.peek(2).is_some());

        // probe (the serving path) DOES refresh recency.
        let mut c = StrategyCache::new(2);
        c.put(1, entry("a")).unwrap();
        c.put(2, entry("b")).unwrap();
        assert!(c.probe(1).is_some());
        c.put(3, entry("c")).unwrap();
        assert!(c.peek(1).is_some(), "probe refreshed key 1");
        assert!(c.peek(2).is_none(), "key 2 became the victim");
    }

    #[test]
    fn peek_never_promotes_disk_entries() {
        let dir = std::env::temp_dir().join(format!("pase-peek-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let key = 77u64;
        {
            let mut c = StrategyCache::new(4).with_disk_dir(&dir);
            c.put(key, entry("on-disk")).unwrap();
        }
        let mut c2 = StrategyCache::new(4).with_disk_dir(&dir);
        assert!(c2.peek(key).is_none(), "peek is memory-only");
        assert_eq!(c2.len(), 0, "nothing promoted");
        assert!(c2.probe(key).is_some(), "probe consults disk");
        assert_eq!(c2.len(), 1, "probe promoted the entry");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn disk_round_trip_and_schema_gate() {
        let dir = std::env::temp_dir().join(format!("pase-cache-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);

        let key = 0xdead_beef_u64;
        {
            let mut c = StrategyCache::new(4).with_disk_dir(&dir);
            c.put(key, entry("persisted")).unwrap();
        }
        // A fresh cache (cold memory) finds the entry on disk.
        let mut c2 = StrategyCache::new(4).with_disk_dir(&dir);
        let got = c2.get(key).expect("disk hit");
        assert_eq!(got, entry("persisted"));
        assert_eq!(c2.hits(), 1);
        // ... and promoted it into memory.
        assert_eq!(c2.len(), 1);

        // An entry from an incompatible build is rejected, not misparsed.
        let path = dir.join(format!("{key:016x}.json"));
        let bumped = std::fs::read_to_string(&path).unwrap().replace(
            &format!("\"schema_version\": {SCHEMA_VERSION}"),
            "\"schema_version\": 999",
        );
        match CacheEntry::from_json(&bumped) {
            Err(Error::SchemaVersion { found: 999, .. }) => {}
            other => panic!("expected SchemaVersion error, got {other:?}"),
        }
        std::fs::write(&path, bumped).unwrap();
        let mut c3 = StrategyCache::new(4).with_disk_dir(&dir);
        assert!(c3.get(key).is_none(), "wrong schema must be a miss");

        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn entry_json_round_trips_exactly() {
        let e = CacheEntry {
            model: "trans\"former".into(),
            devices: 32,
            cost: 0.1 + 0.2, // not exactly representable — bit round-trip
            config_ids: vec![65535, 0, 7],
            frontier: vec![],
            report_json: "{\"cost\": 0.30000000000000004}".into(),
        };
        let (key, back) = CacheEntry::from_json(&e.to_json(42)).unwrap();
        assert_eq!(key, 42);
        assert_eq!(back.cost.to_bits(), e.cost.to_bits());
        assert_eq!(back, e);
    }

    #[test]
    fn frontier_payload_round_trips_exactly() {
        let mut e = entry("frontier");
        e.frontier = vec![
            FrontierPoint {
                cost: 0.1 + 0.2,
                memory_bytes: 9_000_000_000,
                config_ids: vec![4, 2, 0],
            },
            FrontierPoint {
                cost: 7.5e9,
                memory_bytes: 1_000_000,
                config_ids: vec![0, 0, 0],
            },
        ];
        let (key, back) = CacheEntry::from_json(&e.to_json(7)).unwrap();
        assert_eq!(key, 7);
        assert_eq!(back.frontier.len(), 2);
        assert_eq!(
            back.frontier[0].cost.to_bits(),
            e.frontier[0].cost.to_bits()
        );
        assert_eq!(back, e);
        // A frontier entry weighs more than its scalar twin.
        assert!(e.approx_bytes() > entry("frontier").approx_bytes());
    }

    fn sized_entry(tag: &str, report_bytes: usize) -> CacheEntry {
        CacheEntry {
            report_json: "x".repeat(report_bytes),
            ..entry(tag)
        }
    }

    #[test]
    fn byte_budget_evicts_before_the_entry_cap() {
        // Regression: capacity used to be entry-count only, so a handful
        // of huge entries could pin unbounded memory. With a byte budget,
        // the resident bytes stay under it even while the entry cap is
        // nowhere near exhausted.
        let per = entry("big").approx_bytes() + 4096;
        let mut c = StrategyCache::new(64).with_max_bytes(2 * per + per / 2);
        c.put(1, sized_entry("a", 4096)).unwrap();
        c.put(2, sized_entry("b", 4096)).unwrap();
        assert_eq!(c.len(), 2);
        // A third large entry pushes past the byte budget: the LRU entry
        // (key 1) goes, even though 64 slots remain.
        c.put(3, sized_entry("c", 4096)).unwrap();
        assert_eq!(c.len(), 2);
        assert!(c.peek(1).is_none(), "byte budget evicted the LRU entry");
        assert!(c.peek(2).is_some() && c.peek(3).is_some());
        assert!(c.bytes() <= 2 * per + per / 2);
    }

    #[test]
    fn byte_accounting_tracks_inserts_replacements_and_evictions() {
        let mut c = StrategyCache::new(2);
        assert_eq!(c.bytes(), 0);
        c.put(1, sized_entry("a", 100)).unwrap();
        let one = c.bytes();
        assert_eq!(one, sized_entry("a", 100).approx_bytes());
        // Replacement swaps the charge rather than double-counting.
        c.put(1, sized_entry("a", 5000)).unwrap();
        assert_eq!(c.bytes(), sized_entry("a", 5000).approx_bytes());
        // Entry-cap eviction releases the victim's bytes.
        c.put(2, sized_entry("b", 100)).unwrap();
        c.put(3, sized_entry("c", 100)).unwrap();
        assert_eq!(c.len(), 2);
        assert_eq!(c.bytes(), 2 * sized_entry("x", 100).approx_bytes());
    }

    #[test]
    fn the_last_entry_is_never_evicted_by_the_byte_budget() {
        let mut c = StrategyCache::new(8).with_max_bytes(1);
        c.put(1, sized_entry("a", 4096)).unwrap();
        assert_eq!(c.len(), 1, "an oversized sole entry stays resident");
        c.put(2, sized_entry("b", 4096)).unwrap();
        assert_eq!(c.len(), 1, "but it is the first victim of the next put");
        assert!(c.peek(2).is_some());
    }
}
