//! Lock-striped strategy cache with singleflight, for the serve hot path.
//!
//! The PR 4 server funneled every request through one global
//! `Mutex<StrategyCache>`, serializing even pure cache hits, and ran N
//! concurrent identical queries as N redundant searches. This module fixes
//! both:
//!
//! * **Sharding** — the cache is split into [`ShardedCache::shard_count`]
//!   independent [`StrategyCache`] shards, each behind its own mutex,
//!   selected by bits of the content-addressed key (already a well-mixed
//!   FNV-1a hash, so no re-hashing is needed). Hits on different keys
//!   proceed in parallel; a shard mutex is only ever held for an LRU probe
//!   or insert, never across a search.
//! * **Singleflight** — the first request to miss on a key becomes the
//!   *leader* and registers an in-flight marker; concurrent requests for
//!   the same key block on that marker instead of searching, then answer
//!   from the entry the leader cached (counted as `coalesced`, not `hits`).
//!   If the leader fails to produce an entry (budget exhausted, I/O error),
//!   each waiter retries the full lookup — one of them becomes the next
//!   leader, so a poisoned key degrades to the unshared behavior instead of
//!   wedging.
//!
//! Every lookup is counted as exactly one of `hits`, `misses` (the caller
//! got a [`MissGuard`] and must search), or `coalesced`. The counters are
//! process-wide atomics, readable lock-free for the `stats` wire request.

use crate::cache::{write_entry_file, CacheEntry, StrategyCache};
use pase_core::Error;
use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

/// One in-flight search marker. Waiters block on the condvar until the
/// leader (the [`MissGuard`] holder) finishes — successfully or not.
struct Flight {
    done: Mutex<bool>,
    cv: Condvar,
}

impl Flight {
    fn new() -> Self {
        Self {
            done: Mutex::new(false),
            cv: Condvar::new(),
        }
    }

    fn wait(&self) {
        let mut done = self.done.lock().expect("flight lock");
        while !*done {
            done = self.cv.wait(done).expect("flight wait");
        }
    }

    fn finish(&self) {
        *self.done.lock().expect("flight lock") = true;
        self.cv.notify_all();
    }
}

struct Shard {
    cache: Mutex<StrategyCache>,
    flights: Mutex<HashMap<u64, Arc<Flight>>>,
}

/// Aggregated lookup counters (see [`ShardedCache::counters`]).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheCounters {
    /// Lookups answered directly from a shard (memory or disk).
    pub hits: u64,
    /// Lookups that obtained a [`MissGuard`] (the caller searched).
    pub misses: u64,
    /// Lookups answered by waiting on another request's in-flight search.
    pub coalesced: u64,
    /// Searches currently in flight (outstanding [`MissGuard`]s).
    pub in_flight: u64,
}

/// A sharded, singleflight-coalescing [`StrategyCache`] front. See the
/// module docs.
pub struct ShardedCache {
    shards: Vec<Shard>,
    singleflight: bool,
    /// Shared by all stripes; entry filenames embed the full key, so the
    /// stripes never collide on disk. Held here (in addition to each
    /// stripe's [`StrategyCache`]) so [`MissGuard::fulfill`] can build the
    /// entry's path and JSON without taking the stripe lock.
    disk_dir: Option<PathBuf>,
    hits: AtomicU64,
    misses: AtomicU64,
    coalesced: AtomicU64,
    in_flight: AtomicU64,
    /// Test-only artificial latency injected into disk writes, in
    /// milliseconds (see [`ShardedCache::set_disk_write_delay_for_tests`]).
    disk_write_delay_ms: AtomicU64,
}

/// What [`ShardedCache::lookup`] resolved to.
pub enum Lookup<'a> {
    /// The entry was cached (counted as a hit).
    Hit(CacheEntry),
    /// Another request searched this key while we waited (counted as
    /// coalesced).
    Coalesced(CacheEntry),
    /// Nobody has this key: the caller is now the leader and must search,
    /// then [`MissGuard::fulfill`] (or drop the guard on failure).
    Miss(MissGuard<'a>),
}

impl ShardedCache {
    /// Build a cache of `shards` stripes (rounded up to a power of two,
    /// minimum 1) holding `capacity` entries in total, optionally persisted
    /// under `disk_dir` (shared by all stripes — entry filenames embed the
    /// full key, so stripes never collide on disk).
    pub fn new(
        shards: usize,
        capacity: usize,
        disk_dir: Option<PathBuf>,
        singleflight: bool,
    ) -> Self {
        let n = shards.max(1).next_power_of_two();
        let per_shard = capacity.div_ceil(n).max(1);
        let shards = (0..n)
            .map(|_| {
                let mut cache = StrategyCache::new(per_shard);
                if let Some(dir) = &disk_dir {
                    cache = cache.with_disk_dir(dir);
                }
                Shard {
                    cache: Mutex::new(cache),
                    flights: Mutex::new(HashMap::new()),
                }
            })
            .collect();
        Self {
            shards,
            singleflight,
            disk_dir,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            coalesced: AtomicU64::new(0),
            in_flight: AtomicU64::new(0),
            disk_write_delay_ms: AtomicU64::new(0),
        }
    }

    /// Inject artificial latency into every entry-persistence write, to
    /// let tests pin down *where* slow disk I/O is paid. Not part of the
    /// serving API.
    #[doc(hidden)]
    pub fn set_disk_write_delay_for_tests(&self, delay: Duration) {
        self.disk_write_delay_ms
            .store(delay.as_millis() as u64, Ordering::Relaxed);
    }

    /// Bound the resident entry bytes to roughly `max_bytes` in total,
    /// split evenly across the stripes (0 = unbounded). Each stripe evicts
    /// by bytes before its entry cap (see [`StrategyCache::with_max_bytes`]).
    pub fn with_max_bytes(self, max_bytes: u64) -> Self {
        let per_shard = if max_bytes == 0 {
            0
        } else {
            max_bytes.div_ceil(self.shards.len() as u64)
        };
        for shard in &self.shards {
            shard
                .cache
                .lock()
                .expect("shard cache")
                .set_max_bytes(per_shard);
        }
        self
    }

    /// Number of stripes (a power of two).
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    fn shard(&self, key: u64) -> &Shard {
        // The key is an FNV-1a hash; fold the high half in so shard choice
        // does not depend on low-byte patterns alone.
        &self.shards[((key ^ (key >> 32)) as usize) & (self.shards.len() - 1)]
    }

    /// Resolve `key`: a cached entry, a coalesced wait on someone else's
    /// search, or a [`MissGuard`] making the caller the searcher. Each call
    /// increments exactly one of the hit/miss/coalesced counters.
    pub fn lookup(&self, key: u64) -> Lookup<'_> {
        let shard = self.shard(key);
        loop {
            if let Some(entry) = shard.cache.lock().expect("shard cache").probe(key) {
                self.hits.fetch_add(1, Ordering::Relaxed);
                return Lookup::Hit(entry);
            }
            if !self.singleflight {
                self.misses.fetch_add(1, Ordering::Relaxed);
                self.in_flight.fetch_add(1, Ordering::Relaxed);
                return Lookup::Miss(MissGuard {
                    owner: self,
                    key,
                    flight: None,
                    released: false,
                });
            }
            let flight = {
                let mut flights = shard.flights.lock().expect("shard flights");
                match flights.get(&key) {
                    Some(f) => Some(Arc::clone(f)),
                    None => {
                        flights.insert(key, Arc::new(Flight::new()));
                        None
                    }
                }
            };
            match flight {
                None => {
                    // We registered the flight: we are the leader.
                    self.misses.fetch_add(1, Ordering::Relaxed);
                    self.in_flight.fetch_add(1, Ordering::Relaxed);
                    return Lookup::Miss(MissGuard {
                        owner: self,
                        key,
                        flight: Some(()),
                        released: false,
                    });
                }
                Some(f) => {
                    f.wait();
                    if let Some(entry) = shard.cache.lock().expect("shard cache").probe(key) {
                        self.coalesced.fetch_add(1, Ordering::Relaxed);
                        return Lookup::Coalesced(entry);
                    }
                    // The leader failed without caching an entry; retry the
                    // lookup — one waiter will become the next leader.
                }
            }
        }
    }

    /// Snapshot of the lookup counters. `hits + misses + coalesced` equals
    /// the number of completed [`ShardedCache::lookup`] calls.
    pub fn counters(&self) -> CacheCounters {
        CacheCounters {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            coalesced: self.coalesced.load(Ordering::Relaxed),
            in_flight: self.in_flight.load(Ordering::Relaxed),
        }
    }

    /// Non-mutating in-memory lookup: no counters, no LRU refresh, no
    /// disk promotion (see [`StrategyCache::peek`]). The inspection path
    /// for prewarm checks and tests; serving goes through
    /// [`ShardedCache::lookup`].
    pub fn peek(&self, key: u64) -> Option<CacheEntry> {
        self.shard(key).cache.lock().expect("shard cache").peek(key)
    }

    /// Total entries across all stripes' in-memory maps.
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.cache.lock().expect("shard cache").len())
            .sum()
    }

    /// Whether every stripe is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Approximate resident bytes across all stripes (per
    /// [`CacheEntry::approx_bytes`]), for the `stats` wire request.
    pub fn bytes(&self) -> u64 {
        self.shards
            .iter()
            .map(|s| s.cache.lock().expect("shard cache").bytes())
            .sum()
    }
}

/// Leadership over one in-flight search, returned by a miss. Call
/// [`MissGuard::fulfill`] with the search result to cache it and release
/// the waiters; dropping the guard without fulfilling (the search failed)
/// releases them empty-handed so one of them can take over.
pub struct MissGuard<'a> {
    owner: &'a ShardedCache,
    key: u64,
    /// `Some` iff a flight marker was registered (singleflight on).
    flight: Option<()>,
    /// Whether the flight was already released (fulfill releases early,
    /// before its disk write; Drop is then a no-op).
    released: bool,
}

impl MissGuard<'_> {
    /// The key this guard leads.
    pub fn key(&self) -> u64 {
        self.key
    }

    /// Cache `entry` under the guarded key (memory + disk when configured)
    /// and release any coalesced waiters. The stripe lock is held only
    /// for the in-memory insert; the entry is serialized before and the
    /// file is written after, so a slow disk never stalls hits on the
    /// stripe — and the waiters are woken *before* the disk write, so
    /// coalesced requests are answered at memory speed too. Disk failures
    /// are returned after the in-memory insert; waiters are still served.
    pub fn fulfill(mut self, entry: CacheEntry) -> Result<(), Error> {
        let json = self.owner.disk_dir.as_ref().map(|dir| {
            (
                dir.join(format!("{:016x}.json", self.key)),
                entry.to_json(self.key),
            )
        });
        self.owner
            .shard(self.key)
            .cache
            .lock()
            .expect("shard cache")
            .put_memory(self.key, entry);
        // The entry is visible in memory: release the waiters now — their
        // re-probe is guaranteed to hit — and keep only the file write.
        self.release();
        if let Some((path, json)) = json {
            let delay = self.owner.disk_write_delay_ms.load(Ordering::Relaxed);
            if delay > 0 {
                std::thread::sleep(Duration::from_millis(delay));
            }
            write_entry_file(&path, &json)?;
        }
        Ok(())
    }

    /// Decrement `in_flight` and wake any coalesced waiters. Idempotent;
    /// called by [`MissGuard::fulfill`] before its disk write and by Drop
    /// for the failure path.
    fn release(&mut self) {
        if self.released {
            return;
        }
        self.released = true;
        self.owner.in_flight.fetch_sub(1, Ordering::Relaxed);
        if self.flight.is_some() {
            let removed = self
                .owner
                .shard(self.key)
                .flights
                .lock()
                .expect("shard flights")
                .remove(&self.key);
            if let Some(f) = removed {
                // Remove before notify: a waiter that re-probes and misses
                // must find the flight slot free so it can become leader.
                f.finish();
            }
        }
    }
}

impl Drop for MissGuard<'_> {
    fn drop(&mut self) {
        self.release();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(tag: &str) -> CacheEntry {
        CacheEntry {
            model: tag.to_string(),
            devices: 8,
            cost: 2.5e9,
            config_ids: vec![1, 2, 3],
            frontier: vec![],
            report_json: "{}".to_string(),
        }
    }

    #[test]
    fn byte_budget_applies_per_stripe_and_is_reported() {
        let c = ShardedCache::new(1, 64, None, true)
            .with_max_bytes(2 * entry("a").approx_bytes() + entry("a").approx_bytes() / 2);
        assert_eq!(c.bytes(), 0);
        for key in 0..3u64 {
            if let Lookup::Miss(g) = c.lookup(key) {
                g.fulfill(entry("a")).unwrap();
            }
        }
        // Three same-size entries exceed the 2.5-entry budget: one evicted.
        assert_eq!(c.len(), 2, "byte budget evicted despite 64 free slots");
        assert_eq!(c.bytes(), 2 * entry("a").approx_bytes());
    }

    #[test]
    fn miss_fulfill_hit_cycle_counts_each_phase_once() {
        let c = ShardedCache::new(16, 64, None, true);
        match c.lookup(42) {
            Lookup::Miss(guard) => guard.fulfill(entry("a")).unwrap(),
            _ => panic!("first lookup must miss"),
        }
        match c.lookup(42) {
            Lookup::Hit(e) => assert_eq!(e.model, "a"),
            _ => panic!("second lookup must hit"),
        }
        let counters = c.counters();
        assert_eq!(counters.hits, 1);
        assert_eq!(counters.misses, 1);
        assert_eq!(counters.coalesced, 0);
        assert_eq!(counters.in_flight, 0);
    }

    #[test]
    fn shard_count_is_a_power_of_two_and_capacity_splits() {
        assert_eq!(ShardedCache::new(16, 64, None, true).shard_count(), 16);
        assert_eq!(ShardedCache::new(9, 64, None, true).shard_count(), 16);
        assert_eq!(ShardedCache::new(0, 64, None, true).shard_count(), 1);
        // Tiny capacity still gives every stripe at least one slot.
        let c = ShardedCache::new(16, 1, None, true);
        for key in 0..32u64 {
            if let Lookup::Miss(g) = c.lookup(key) {
                g.fulfill(entry("x")).unwrap();
            }
        }
        assert!(c.len() >= 16, "each stripe retains its own LRU");
    }

    #[test]
    fn concurrent_same_key_lookups_coalesce_into_one_search() {
        let c = Arc::new(ShardedCache::new(16, 64, None, true));
        let key = 7u64;
        let threads: Vec<_> = (0..8)
            .map(|_| {
                let c = Arc::clone(&c);
                std::thread::spawn(move || match c.lookup(key) {
                    Lookup::Miss(guard) => {
                        // Simulate a search long enough for others to pile up.
                        std::thread::sleep(std::time::Duration::from_millis(30));
                        guard.fulfill(entry("searched")).unwrap();
                        "miss"
                    }
                    Lookup::Coalesced(e) => {
                        assert_eq!(e.model, "searched");
                        "coalesced"
                    }
                    Lookup::Hit(e) => {
                        assert_eq!(e.model, "searched");
                        "hit"
                    }
                })
            })
            .collect();
        let outcomes: Vec<&str> = threads.into_iter().map(|t| t.join().unwrap()).collect();
        let misses = outcomes.iter().filter(|&&o| o == "miss").count();
        assert_eq!(misses, 1, "exactly one search: {outcomes:?}");
        let counters = c.counters();
        assert_eq!(counters.hits + counters.misses + counters.coalesced, 8);
        assert_eq!(counters.misses, 1);
        assert_eq!(counters.in_flight, 0);
    }

    #[test]
    fn failed_leader_hands_off_to_a_waiter() {
        let c = Arc::new(ShardedCache::new(4, 16, None, true));
        let key = 9u64;
        let barrier = Arc::new(std::sync::Barrier::new(2));
        let waiter = {
            let c = Arc::clone(&c);
            let barrier = Arc::clone(&barrier);
            std::thread::spawn(move || {
                barrier.wait(); // leader holds the flight before we look up
                match c.lookup(key) {
                    Lookup::Miss(guard) => {
                        guard.fulfill(entry("second-try")).unwrap();
                        true
                    }
                    _ => false,
                }
            })
        };
        match c.lookup(key) {
            Lookup::Miss(guard) => {
                barrier.wait();
                // Give the waiter time to block on the flight, then fail.
                std::thread::sleep(std::time::Duration::from_millis(30));
                drop(guard); // search failed: no fulfill
            }
            _ => panic!("leader must miss"),
        }
        assert!(
            waiter.join().unwrap(),
            "waiter must become the next leader after a failed flight"
        );
        assert_eq!(c.counters().misses, 2);
    }

    #[test]
    fn slow_disk_writes_do_not_stall_hits_or_waiters_on_the_stripe() {
        use std::time::{Duration, Instant};
        let dir = std::env::temp_dir().join(format!(
            "pase-slow-disk-test-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);

        // One stripe: every key contends on the same lock, the worst case.
        let c = Arc::new(ShardedCache::new(1, 16, Some(dir.clone()), true));
        let (hot, cold) = (1u64, 2u64);
        match c.lookup(hot) {
            Lookup::Miss(g) => g.fulfill(entry("hot")).unwrap(),
            _ => panic!("first lookup must miss"),
        }

        const DELAY: Duration = Duration::from_millis(400);
        c.set_disk_write_delay_for_tests(DELAY);
        // A waiter coalesces onto the cold key while the leader's disk
        // write crawls; it must be released at memory speed.
        let leader = {
            let c = Arc::clone(&c);
            std::thread::spawn(move || match c.lookup(cold) {
                Lookup::Miss(g) => g.fulfill(entry("cold")).unwrap(),
                _ => panic!("leader must miss"),
            })
        };
        // Wait until the leader holds the flight (its miss is counted).
        while c.counters().misses < 2 {
            std::thread::yield_now();
        }
        let waiter = {
            let c = Arc::clone(&c);
            std::thread::spawn(move || {
                let t0 = Instant::now();
                match c.lookup(cold) {
                    Lookup::Coalesced(e) | Lookup::Hit(e) => assert_eq!(e.model, "cold"),
                    Lookup::Miss(_) => panic!("must ride the in-flight search"),
                }
                t0.elapsed()
            })
        };

        // Meanwhile, hits on OTHER keys of the same stripe must not queue
        // behind the leader's slow write.
        std::thread::sleep(Duration::from_millis(50));
        let t0 = Instant::now();
        match c.lookup(hot) {
            Lookup::Hit(e) => assert_eq!(e.model, "hot"),
            _ => panic!("hot key must hit"),
        }
        let hit_latency = t0.elapsed();
        assert!(
            hit_latency < DELAY / 2,
            "a slow disk write stalled a same-stripe hit for {hit_latency:?}"
        );
        let waiter_latency = waiter.join().unwrap();
        assert!(
            waiter_latency < DELAY + DELAY / 2,
            "waiter blocked past the search itself: {waiter_latency:?}"
        );
        leader.join().unwrap();
        // The write did land, after the delay.
        assert!(dir.join(format!("{cold:016x}.json")).exists());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn singleflight_off_lets_same_key_searches_race() {
        let c = ShardedCache::new(1, 16, None, false);
        let a = c.lookup(5);
        let b = c.lookup(5);
        assert!(matches!(a, Lookup::Miss(_)));
        assert!(matches!(b, Lookup::Miss(_)), "no coalescing when off");
        assert_eq!(c.counters().misses, 2);
        assert_eq!(c.counters().in_flight, 2);
    }
}
