//! The event-driven front end: one epoll readiness loop owns every
//! connection, a bounded worker pool runs the searches.
//!
//! The thread-per-connection front end ([`crate::server`]) pins a worker
//! per connection for its whole lifetime, so 512 idle keep-alive clients
//! starve a 16-worker pool outright. Here the roles are split:
//!
//! - **The event thread** owns the listener and every connection's
//!   read/write buffers. It accepts, reads nonblocking sockets into
//!   per-connection buffers, splits out complete request lines, flushes
//!   responses, and closes idle or hostile connections. An idle
//!   connection costs the bytes of its [`Conn`] struct — no thread, no
//!   sleep-poll.
//! - **The worker pool** (same size and channel discipline as the
//!   threaded front end) only ever sees complete request lines as
//!   [`Job`]s. Finished responses come back through a completion queue
//!   plus a [`WakePipe`] byte, so the reactor wakes exactly when there is
//!   work, not on a timer.
//!
//! At most one job per connection is in flight at a time — responses
//! stay in request order and one chatty client cannot monopolize the
//! pool; its later lines wait in `Conn::pending` until the earlier
//! response is handed back.
//!
//! Idle-timeout semantics are deliberately stricter than the threaded
//! loop: only a *complete* request line (or a served response) refreshes
//! the activity clock, so a slow-loris client dribbling bytes without a
//! newline is closed at the same deadline as a silent one.

#![cfg(target_os = "linux")]

use crate::protocol::write_error_json;
use crate::reactor::{Interest, Reactor, WakePipe, Waker};
use crate::server::{handle_line, summarize, ServeSummary, Shared, MAX_LINE};
use std::collections::{HashMap, VecDeque};
use std::io::{ErrorKind, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::os::unix::io::AsRawFd;
use std::sync::atomic::Ordering;
use std::sync::{mpsc, Arc, Mutex};
use std::time::{Duration, Instant};

const LISTENER: u64 = 0;
const WAKER: u64 = 1;
const FIRST_CONN: u64 = 2;

/// Reactor wait granularity: bounds how stale the idle sweep and the
/// shutdown-flag check can be. Nothing sleeps at this cadence — readiness
/// and completions wake the loop immediately.
const TICK: Duration = Duration::from_millis(10);

/// Per-event read cap. Level-triggered epoll re-reports a socket with
/// unread bytes, so stopping here bounds one connection's share of a loop
/// iteration without losing data.
const READ_BUDGET: usize = 16 * 4096;

/// How long after a shutdown request idle connections are kept so that
/// requests already in their socket buffers can be read and served — the
/// drain guarantee. Matches the threaded front end, which notices
/// shutdown on the first idle read poll (one `POLL` tick).
const SHUTDOWN_GRACE: Duration = Duration::from_millis(20);

/// A complete request line headed for the worker pool.
struct Job {
    token: u64,
    line: String,
}

/// A rendered response (newline included) headed back to its connection.
struct Done {
    token: u64,
    response: String,
}

/// Per-connection state owned by the event thread.
struct Conn {
    stream: TcpStream,
    /// Raw bytes read but not yet split into lines.
    inbuf: Vec<u8>,
    /// Complete lines waiting their turn in the worker pool.
    pending: VecDeque<String>,
    /// Rendered-but-unflushed response bytes.
    out: Vec<u8>,
    /// A job for this connection is in the pool right now.
    in_flight: bool,
    /// The peer sent EOF (or hung up); serve what is buffered, then close.
    read_closed: bool,
    /// Close as soon as `out` drains (protocol violation, e.g. oversized
    /// line).
    closing: bool,
    /// What the fd is currently registered for (`None` = deregistered).
    registered: Option<Interest>,
    /// Last complete request line or served response — the idle clock.
    /// Partial input does *not* refresh it (slow-loris).
    last_activity: Instant,
}

impl Conn {
    fn new(stream: TcpStream) -> Self {
        Self {
            stream,
            inbuf: Vec::new(),
            pending: VecDeque::new(),
            out: Vec::new(),
            in_flight: false,
            read_closed: false,
            closing: false,
            registered: Some(Interest::READ),
            last_activity: Instant::now(),
        }
    }

    /// Nothing buffered, nothing in flight: safe to close without losing
    /// a request or a response.
    fn is_idle(&self) -> bool {
        !self.in_flight && self.pending.is_empty() && self.out.is_empty()
    }

    /// Read until `WouldBlock`, EOF, or the per-event budget; split
    /// complete lines into `pending`. Returns `false` on a fatal error.
    fn read_ready(&mut self) -> bool {
        if !self.read_closed {
            let mut taken = 0;
            loop {
                let mut chunk = [0u8; 4096];
                match self.stream.read(&mut chunk) {
                    Ok(0) => {
                        self.read_closed = true;
                        break;
                    }
                    Ok(n) => {
                        self.inbuf.extend_from_slice(&chunk[..n]);
                        taken += n;
                        if taken >= READ_BUDGET {
                            break; // level-triggered: epoll re-notifies
                        }
                    }
                    Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                    Err(e) if e.kind() == ErrorKind::Interrupted => {}
                    Err(_) => return false,
                }
            }
        }
        while let Some(nl) = self.inbuf.iter().position(|&b| b == b'\n') {
            let rest = self.inbuf.split_off(nl + 1);
            let mut line = std::mem::replace(&mut self.inbuf, rest);
            line.pop(); // the newline
            if line.last() == Some(&b'\r') {
                line.pop();
            }
            self.last_activity = Instant::now();
            let line = String::from_utf8_lossy(&line).into_owned();
            if line.trim().is_empty() {
                continue;
            }
            self.pending.push_back(line);
        }
        if !self.closing && self.inbuf.len() > MAX_LINE {
            let mut err = String::new();
            write_error_json(
                &mut err,
                &pase_core::Error::Protocol(format!("request line exceeds {MAX_LINE} bytes")),
            );
            err.push('\n');
            // Answer the violation, drop everything else, close after the
            // in-flight job (if any) and this error flush.
            self.out.extend_from_slice(err.as_bytes());
            self.inbuf = Vec::new();
            self.pending.clear();
            self.read_closed = true;
            self.closing = true;
        }
        true
    }

    /// Write as much of `out` as the socket takes. Returns `false` on a
    /// fatal error.
    fn flush(&mut self) -> bool {
        while !self.out.is_empty() {
            match self.stream.write(&self.out) {
                Ok(0) => return false,
                Ok(n) => {
                    self.out.drain(..n);
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == ErrorKind::Interrupted => {}
                Err(_) => return false,
            }
        }
        true
    }
}

/// The event loop. Called from [`crate::Server::run`] with the bound
/// listener; returns the same [`ServeSummary`] as the threaded front end.
pub(crate) fn run(listener: TcpListener, shared: Arc<Shared>) -> std::io::Result<ServeSummary> {
    listener.set_nonblocking(true)?;
    let mut reactor = Reactor::new()?;
    let wake = WakePipe::new()?;
    reactor.register(listener.as_raw_fd(), LISTENER, Interest::READ)?;
    reactor.register(wake.read_fd(), WAKER, Interest::READ)?;

    let (tx, rx) = mpsc::channel::<Job>();
    let rx = Arc::new(Mutex::new(rx));
    let completions: Arc<Mutex<Vec<Done>>> = Arc::new(Mutex::new(Vec::new()));
    let workers: Vec<_> = (0..shared.cfg.workers.max(1))
        .map(|_| {
            let rx = Arc::clone(&rx);
            let shared = Arc::clone(&shared);
            let completions = Arc::clone(&completions);
            let waker: Waker = wake.waker();
            std::thread::spawn(move || loop {
                let job = match rx.lock().expect("worker queue").recv() {
                    Ok(job) => job,
                    Err(_) => break, // event loop closed the channel
                };
                let mut response = String::new();
                handle_line(&job.line, &shared, &mut response);
                response.push('\n');
                completions.lock().expect("completions").push(Done {
                    token: job.token,
                    response,
                });
                waker.wake();
            })
        })
        .collect();

    let mut conns: HashMap<u64, Conn> = HashMap::new();
    let mut next_token = FIRST_CONN;
    let mut events = Vec::new();
    let mut listening = true;
    let mut wakeups = 0u64;
    let mut depth = 0u64; // jobs dispatched but not yet completed

    let dispatch = |conn: &mut Conn, token: u64, depth: &mut u64| {
        if conn.in_flight || conn.closing {
            return;
        }
        if let Some(line) = conn.pending.pop_front() {
            conn.in_flight = true;
            *depth += 1;
            shared.trace.counter("queue_depth", *depth);
            // A send can only fail if all workers died; the conn is then
            // torn down by the idle sweep once nothing completes.
            let _ = tx.send(Job { token, line });
        }
    };

    let mut shutdown_at: Option<Instant> = None;
    loop {
        if shared.shutdown.load(Ordering::SeqCst) && listening {
            // Connections whose handshake completed before shutdown still
            // get served: drain the backlog once, then stop listening.
            accept_all(&listener, &reactor, &mut conns, &mut next_token);
            let _ = reactor.deregister(listener.as_raw_fd());
            listening = false;
            shutdown_at = Some(Instant::now());
        }
        if let Some(t0) = shutdown_at {
            if t0.elapsed() >= SHUTDOWN_GRACE {
                // Grace over: one final read per idle connection (bytes
                // already in the socket buffer must still be answered),
                // then close whatever has no work.
                let idle: Vec<u64> = conns
                    .iter()
                    .filter(|(_, c)| c.is_idle())
                    .map(|(&t, _)| t)
                    .collect();
                for token in idle {
                    let Some(conn) = conns.get_mut(&token) else {
                        continue;
                    };
                    let mut keep = conn.read_ready();
                    if keep {
                        dispatch(conn, token, &mut depth);
                        keep = !conn.is_idle() && settle(conn, token, &reactor);
                    }
                    if !keep {
                        close_conn(&reactor, &mut conns, token);
                    }
                }
            }
            if conns.is_empty() {
                break;
            }
        }

        events.clear();
        let n = reactor.wait(TICK, |ev| events.push(ev))?;
        if n > 0 {
            wakeups += 1;
            shared.trace.counter("loop_wakeups", wakeups);
        }

        for ev in &events {
            match ev.token {
                LISTENER => {
                    if listening {
                        accept_all(&listener, &reactor, &mut conns, &mut next_token);
                    }
                }
                WAKER => wake.drain(),
                token => {
                    let Some(conn) = conns.get_mut(&token) else {
                        continue;
                    };
                    let mut keep = true;
                    if ev.readable || ev.hangup {
                        // A hangup may still have final bytes buffered;
                        // read_ready picks up both the data and the EOF.
                        keep = conn.read_ready();
                    }
                    if keep && ev.writable {
                        keep = conn.flush();
                    }
                    if keep {
                        dispatch(conn, token, &mut depth);
                        keep = settle(conn, token, &reactor);
                    }
                    if !keep {
                        close_conn(&reactor, &mut conns, token);
                    }
                }
            }
        }

        // Hand completed responses back to their connections.
        let done: Vec<Done> = std::mem::take(&mut *completions.lock().expect("completions"));
        for d in done {
            depth = depth.saturating_sub(1);
            shared.trace.counter("queue_depth", depth);
            let Some(conn) = conns.get_mut(&d.token) else {
                continue; // connection died while its search ran
            };
            conn.in_flight = false;
            conn.out.extend_from_slice(d.response.as_bytes());
            conn.last_activity = Instant::now();
            let keep = conn.flush() && {
                dispatch(conn, d.token, &mut depth);
                settle(conn, d.token, &reactor)
            };
            if !keep {
                close_conn(&reactor, &mut conns, d.token);
            }
        }

        // Idle sweep: a connection with no complete line and no pending
        // work for idle_timeout is closed — this is what makes slow-loris
        // and silent keep-alive clients cost nothing but these bytes. A
        // connection whose peer stopped reading its response is caught by
        // the same clock (flush progress does not refresh it).
        let now = Instant::now();
        let timeout = shared.cfg.idle_timeout;
        let expired: Vec<u64> = conns
            .iter()
            .filter(|(_, c)| {
                !c.in_flight
                    && c.pending.is_empty()
                    && now.duration_since(c.last_activity) >= timeout
            })
            .map(|(&t, _)| t)
            .collect();
        for token in expired {
            close_conn(&reactor, &mut conns, token);
        }
    }

    // Joining before `wake` drops keeps every Waker fd-copy valid.
    drop(tx);
    for w in workers {
        let _ = w.join();
    }
    Ok(summarize(&shared))
}

/// Accept until the backlog is empty, registering each connection
/// read-only under a fresh token.
fn accept_all(
    listener: &TcpListener,
    reactor: &Reactor,
    conns: &mut HashMap<u64, Conn>,
    next_token: &mut u64,
) {
    loop {
        match listener.accept() {
            Ok((stream, _)) => {
                // Request/response lines are tiny; Nagle + delayed ACK
                // would add tens of ms to every round trip.
                let _ = stream.set_nodelay(true);
                if stream.set_nonblocking(true).is_err() {
                    continue;
                }
                let token = *next_token;
                *next_token += 1;
                if reactor
                    .register(stream.as_raw_fd(), token, Interest::READ)
                    .is_err()
                {
                    continue;
                }
                conns.insert(token, Conn::new(stream));
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock => break,
            Err(e) if e.kind() == ErrorKind::Interrupted => {}
            Err(_) => break,
        }
    }
}

/// Post-I/O bookkeeping: close finished connections, and re-register the
/// fd for exactly the events that can make progress (write interest only
/// while `out` has bytes; read interest only until EOF — both are
/// level-triggered, so a stale interest would spin the loop).
fn settle(conn: &mut Conn, token: u64, reactor: &Reactor) -> bool {
    if conn.is_idle() && (conn.closing || conn.read_closed) {
        return false; // drained: nothing pending, nothing to flush
    }
    let want = Interest {
        readable: !conn.read_closed,
        writable: !conn.out.is_empty(),
    };
    let fd = conn.stream.as_raw_fd();
    match (conn.registered, want.readable || want.writable) {
        (Some(cur), true) if cur != want => {
            if reactor.modify(fd, token, want).is_err() {
                return false;
            }
            conn.registered = Some(want);
        }
        (Some(_), false) => {
            // Read side closed, response still being computed: nothing to
            // wait for until the completion queue delivers it.
            let _ = reactor.deregister(fd);
            conn.registered = None;
        }
        (None, true) => {
            if reactor.register(fd, token, want).is_err() {
                return false;
            }
            conn.registered = Some(want);
        }
        _ => {}
    }
    true
}

/// Deregister and drop one connection (dropping the stream closes the
/// fd).
fn close_conn(reactor: &Reactor, conns: &mut HashMap<u64, Conn>, token: u64) {
    if let Some(conn) = conns.remove(&token) {
        if conn.registered.is_some() {
            let _ = reactor.deregister(conn.stream.as_raw_fd());
        }
    }
}
