//! Stress coverage for the sharded cache + singleflight serve path:
//! many concurrent identical and distinct queries against a live server
//! with cache-dir persistence, asserting result parity, coalescing, and
//! the absence of deadlocks under contention.

use pase_obs::json;
use pase_serve::{ServeSummary, Server, ServerConfig, ShutdownHandle};
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::{Arc, Barrier};

fn start(
    cfg: ServerConfig,
) -> (
    SocketAddr,
    ShutdownHandle,
    std::thread::JoinHandle<ServeSummary>,
) {
    let server = Server::bind(cfg).expect("bind");
    let addr = server.local_addr().expect("addr");
    let handle = server.shutdown_handle();
    let join = std::thread::spawn(move || server.run().expect("run"));
    (addr, handle, join)
}

fn query(addr: SocketAddr, line: &str) -> json::Value {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream.write_all(line.as_bytes()).unwrap();
    stream.write_all(b"\n").unwrap();
    let mut reader = BufReader::new(stream);
    let mut response = String::new();
    reader.read_line(&mut response).expect("response");
    json::parse(&response).expect("valid response JSON")
}

/// The "inception" search takes long enough (tens of ms) that concurrent
/// identical requests reliably pile up behind the first one's flight.
const SLOW: &str =
    "{\"model\": \"inception\", \"devices\": 8, \"machine\": \"test\", \"weak_scaling\": false}";

#[test]
fn concurrent_identical_and_distinct_queries_under_persistence() {
    let dir = std::env::temp_dir().join(format!("pase-serve-stress-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    let (addr, handle, join) = start(ServerConfig {
        workers: 12,
        cache_dir: Some(dir.clone()),
        ..ServerConfig::default()
    });

    // Phase 1: 8 identical "slow" queries released simultaneously, plus 4
    // distinct "mlp" queries racing them on other shards. The barrier
    // maximizes the window in which identical requests can coalesce.
    let barrier = Arc::new(Barrier::new(12));
    let identical: Vec<_> = (0..8)
        .map(|_| {
            let barrier = Arc::clone(&barrier);
            std::thread::spawn(move || {
                barrier.wait();
                query(addr, SLOW)
            })
        })
        .collect();
    let distinct: Vec<_> = (0..4)
        .map(|i| {
            let barrier = Arc::clone(&barrier);
            let line = format!(
                "{{\"model\": \"mlp\", \"devices\": {}, \"machine\": \"test\", \
                 \"weak_scaling\": false}}",
                2 + i
            );
            std::thread::spawn(move || {
                barrier.wait();
                query(addr, &line)
            })
        })
        .collect();

    // (a) Identical keys get identical strategies, costs, and cache keys.
    let responses: Vec<json::Value> = identical.into_iter().map(|t| t.join().unwrap()).collect();
    let first = &responses[0];
    assert!(first.get("cost").and_then(|c| c.as_f64()).is_some());
    for v in &responses[1..] {
        assert_eq!(v.get("cost"), first.get("cost"));
        assert_eq!(v.get("strategy"), first.get("strategy"));
        assert_eq!(v.get("cache_key"), first.get("cache_key"));
    }
    // Distinct queries all succeed and differ from each other.
    let distinct: Vec<json::Value> = distinct.into_iter().map(|t| t.join().unwrap()).collect();
    for v in &distinct {
        assert!(v.get("cost").and_then(|c| c.as_f64()).is_some());
    }
    for w in distinct.windows(2) {
        assert_ne!(w[0].get("cache_key"), w[1].get("cache_key"));
    }

    // (b) The stats endpoint shows the searches were deduplicated: fewer
    // misses (= real searches) than search requests, and every request
    // accounted as exactly one of hit/miss/coalesced.
    let v = query(addr, "{\"stats\": true}");
    let stats = v.get("stats").expect("stats object");
    let field = |name: &str| stats.get(name).and_then(|x| x.as_u64()).expect(name);
    let (hits, misses, coalesced) = (
        field("cache_hits"),
        field("cache_misses"),
        field("coalesced"),
    );
    assert_eq!(hits + misses + coalesced, 12, "12 search requests");
    assert!(
        misses < 12,
        "singleflight/cache must deduplicate at least one search: \
         hits={hits} misses={misses} coalesced={coalesced}"
    );
    assert!(misses >= 5, "5 distinct keys need at least 5 searches");
    assert_eq!(field("in_flight"), 0);

    // Phase 2 (c): hammer the same + fresh keys again — every hit now also
    // exercises disk promotion/persistence under contention. Completing at
    // all (within the test harness timeout) is the no-deadlock assertion.
    let again: Vec<_> = (0..12)
        .map(|i| {
            std::thread::spawn(move || {
                if i % 2 == 0 {
                    query(addr, SLOW)
                } else {
                    query(
                        addr,
                        &format!(
                            "{{\"model\": \"mlp\", \"devices\": {}, \"machine\": \"test\", \
                             \"weak_scaling\": false}}",
                            2 + i
                        ),
                    )
                }
            })
        })
        .collect();
    for t in again {
        let v = t.join().unwrap();
        assert!(v.get("cost").and_then(|c| c.as_f64()).is_some());
    }

    handle.shutdown();
    let summary = join.join().unwrap();
    assert_eq!(summary.requests, 25, "12 + stats + 12");
    assert_eq!(
        summary.cache_hits + summary.cache_misses + summary.coalesced,
        24
    );
    // Persistence actually happened: entries exist on disk.
    let files = std::fs::read_dir(&dir).expect("cache dir exists").count();
    assert!(
        files >= 5,
        "at least one file per distinct key, got {files}"
    );
    let _ = std::fs::remove_dir_all(&dir);
}
