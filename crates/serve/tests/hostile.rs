//! Hostile-client coverage for the event-driven front end: slow-loris
//! writers, idle keep-alive swarms, oversized lines, and deeply nested
//! JSON must not occupy a search worker, must still be bounded by
//! `idle_timeout`, and must never take down the server.
//!
//! Everything here runs against [`FrontEnd::Event`], so the file is
//! linux-only — the threaded front end keeps its own coverage in
//! `crates/serve/src/server.rs`.
#![cfg(target_os = "linux")]

use pase_obs::json;
use pase_serve::{FrontEnd, ServeSummary, Server, ServerConfig, ShutdownHandle};
use std::io::{BufRead, BufReader, ErrorKind, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::{Duration, Instant};

fn start(
    cfg: ServerConfig,
) -> (
    SocketAddr,
    ShutdownHandle,
    std::thread::JoinHandle<ServeSummary>,
) {
    let server = Server::bind(cfg).expect("bind");
    let addr = server.local_addr().expect("addr");
    let handle = server.shutdown_handle();
    let join = std::thread::spawn(move || server.run().expect("run"));
    (addr, handle, join)
}

fn query(addr: SocketAddr, line: &str) -> json::Value {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream.write_all(line.as_bytes()).unwrap();
    stream.write_all(b"\n").unwrap();
    let mut reader = BufReader::new(stream);
    let mut response = String::new();
    reader.read_line(&mut response).expect("response");
    json::parse(&response).expect("valid response JSON")
}

const MLP: &str =
    "{\"model\": \"mlp\", \"devices\": 4, \"machine\": \"test\", \"weak_scaling\": false}";

fn event_config() -> ServerConfig {
    ServerConfig {
        frontend: FrontEnd::Event,
        ..ServerConfig::default()
    }
}

/// An idle keep-alive connection must not occupy a worker: with a
/// single-worker pool and an idle client still connected, queries are
/// answered. (The threaded front end cannot do this — its one worker is
/// pinned by the idle connection until the idle timeout.)
#[test]
fn idle_connection_does_not_occupy_the_only_worker() {
    let (addr, handle, join) = start(ServerConfig {
        workers: 1,
        ..event_config()
    });
    let idle = TcpStream::connect(addr).expect("idle connect");
    idle.set_read_timeout(Some(Duration::from_millis(10)))
        .unwrap();
    let v = query(addr, MLP);
    assert!(v.get("cost").and_then(|c| c.as_f64()).is_some());
    // The idle connection is still open after the query was served.
    let mut buf = [0u8; 1];
    match (&idle).read(&mut buf) {
        Ok(0) => panic!("idle connection was closed to serve the query"),
        Ok(_) => panic!("unexpected bytes on an idle connection"),
        Err(e) => assert!(
            matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut),
            "{e}"
        ),
    }
    handle.shutdown();
    join.join().unwrap();
}

/// A swarm of idle keep-alive connections costs buffers, not workers:
/// queries keep completing promptly with the swarm connected, and the
/// idle timeout still reaps every member.
#[test]
fn idle_swarm_neither_starves_workers_nor_escapes_the_idle_timeout() {
    let (addr, handle, join) = start(ServerConfig {
        workers: 2,
        idle_timeout: Duration::from_millis(400),
        ..event_config()
    });
    let swarm: Vec<TcpStream> = (0..64)
        .map(|_| TcpStream::connect(addr).expect("swarm connect"))
        .collect();
    for s in &swarm {
        s.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
    }
    // Active load while the swarm idles.
    for _ in 0..4 {
        let v = query(addr, MLP);
        assert!(v.get("cost").and_then(|c| c.as_f64()).is_some());
    }
    // Every swarm member is closed by the server on its own.
    for mut s in swarm {
        let mut buf = [0u8; 1];
        assert_eq!(s.read(&mut buf).expect("server-side close"), 0);
    }
    handle.shutdown();
    let summary = join.join().unwrap();
    assert_eq!(summary.requests, 4);
}

/// A slow-loris client dribbling bytes that never form a complete line is
/// closed at the idle deadline — partial input does not refresh the idle
/// clock — and meanwhile occupies no worker.
#[test]
fn slow_loris_is_closed_at_the_idle_deadline_without_pinning_a_worker() {
    let (addr, handle, join) = start(ServerConfig {
        workers: 1,
        idle_timeout: Duration::from_millis(300),
        ..event_config()
    });
    let mut loris = TcpStream::connect(addr).expect("loris connect");
    loris
        .set_read_timeout(Some(Duration::from_secs(5)))
        .unwrap();
    let t0 = Instant::now();
    let closed_after = loop {
        // One byte at a time, never a newline.
        match loris.write_all(b"x") {
            Ok(()) => {}
            Err(_) => break t0.elapsed(), // reset: server already closed
        }
        // The single worker stays available for real traffic.
        let v = query(addr, MLP);
        assert!(v.get("cost").and_then(|c| c.as_f64()).is_some());
        let mut buf = [0u8; 1];
        match loris.set_read_timeout(Some(Duration::from_millis(50))) {
            Ok(()) => match loris.read(&mut buf) {
                Ok(0) => break t0.elapsed(), // server-side close
                Ok(_) => panic!("unexpected bytes for a loris"),
                Err(e) if matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut) => {}
                Err(_) => break t0.elapsed(),
            },
            Err(_) => break t0.elapsed(),
        }
        assert!(t0.elapsed() < Duration::from_secs(10), "loris never closed");
    };
    assert!(
        closed_after >= Duration::from_millis(250),
        "closed too eagerly: {closed_after:?}"
    );
    handle.shutdown();
    join.join().unwrap();
}

/// Port of the PR 4 oversized-line test: a line over the cap gets one
/// protocol error, then the connection closes.
#[test]
fn oversized_line_gets_an_error_and_the_connection_closes() {
    const MAX_LINE: usize = 4 << 20;
    let (addr, handle, join) = start(event_config());
    let mut stream = TcpStream::connect(addr).expect("connect");
    let big = vec![b'x'; MAX_LINE + 1];
    stream.write_all(&big).unwrap();
    let mut reader = BufReader::new(stream);
    let mut response = String::new();
    reader.read_line(&mut response).expect("error response");
    let v = json::parse(&response).expect("valid JSON");
    assert!(v
        .get("error")
        .and_then(|e| e.as_str())
        .expect("an error")
        .contains("exceeds"));
    let mut rest = String::new();
    assert_eq!(
        reader.read_line(&mut rest).unwrap(),
        0,
        "closed after error"
    );
    handle.shutdown();
    join.join().unwrap();
}

/// Port of the PR 4 deep-nesting test: the JSON parser's depth bound
/// answers with a protocol error, and the connection survives to serve a
/// well-formed request.
#[test]
fn deeply_nested_json_is_rejected_and_the_connection_survives() {
    let (addr, handle, join) = start(event_config());
    let mut stream = TcpStream::connect(addr).expect("connect");
    let deep = format!("{}1{}", "[".repeat(200), "]".repeat(200));
    stream.write_all(deep.as_bytes()).unwrap();
    stream.write_all(b"\n").unwrap();
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    let mut response = String::new();
    reader.read_line(&mut response).expect("error response");
    let v = json::parse(&response).expect("valid JSON");
    assert!(v
        .get("error")
        .and_then(|e| e.as_str())
        .expect("an error")
        .contains("nesting"));
    // Same connection, a valid request: still served.
    stream.write_all(MLP.as_bytes()).unwrap();
    stream.write_all(b"\n").unwrap();
    response.clear();
    reader.read_line(&mut response).expect("valid response");
    let v = json::parse(&response).expect("valid JSON");
    assert!(v.get("cost").and_then(|c| c.as_f64()).is_some());
    handle.shutdown();
    join.join().unwrap();
}

/// Pipelined requests written in one burst come back in order, one
/// response line each.
#[test]
fn pipelined_requests_are_answered_in_order() {
    let (addr, handle, join) = start(event_config());
    let mut stream = TcpStream::connect(addr).expect("connect");
    let mut burst = String::new();
    for devices in [2, 3, 4] {
        burst.push_str(&format!(
            "{{\"model\": \"mlp\", \"devices\": {devices}, \"machine\": \"test\", \
             \"weak_scaling\": false}}\n"
        ));
    }
    stream.write_all(burst.as_bytes()).unwrap();
    let mut reader = BufReader::new(stream);
    let mut keys = Vec::new();
    for _ in 0..3 {
        let mut response = String::new();
        reader.read_line(&mut response).expect("response");
        let v = json::parse(&response).expect("valid JSON");
        assert!(v.get("cost").and_then(|c| c.as_f64()).is_some());
        keys.push(v.get("cache_key").cloned().expect("a key"));
    }
    // Distinct requests, distinct keys, in request order (keys are
    // deterministic, so re-asking devices=2 must reproduce keys[0]).
    assert_ne!(keys[0], keys[1]);
    assert_ne!(keys[1], keys[2]);
    let again = query(
        addr,
        "{\"model\": \"mlp\", \"devices\": 2, \"machine\": \"test\", \"weak_scaling\": false}",
    );
    assert_eq!(again.get("cache_key"), keys.first());
    handle.shutdown();
    join.join().unwrap();
}
