//! Graph statistics (used by the Fig. 5 / §III-C analysis harness).

use crate::graph::Graph;

/// Degree distribution summary.
#[derive(Clone, Debug, PartialEq)]
pub struct DegreeStats {
    /// Maximum undirected degree.
    pub max: usize,
    /// Mean undirected degree.
    pub mean: f64,
    /// Number of nodes with degree ≥ 5 (the paper's notion of "high degree"
    /// nodes: InceptionV3 has 206 nodes of degree < 5 and 12 with ≥ 5).
    pub high_degree: usize,
    /// Histogram: `histogram[d]` = number of nodes of degree `d`.
    pub histogram: Vec<usize>,
}

/// Whole-graph summary used by the experiment harness.
#[derive(Clone, Debug, PartialEq)]
pub struct GraphStats {
    /// `|V|`.
    pub nodes: usize,
    /// `|E|` (directed).
    pub edges: usize,
    /// Degree distribution.
    pub degrees: DegreeStats,
    /// Total step FLOPs (fwd + bwd) of the sequential model.
    pub step_flops: f64,
    /// Total trainable parameter elements.
    pub params: f64,
}

impl GraphStats {
    /// Compute statistics of `g`.
    pub fn of(g: &Graph) -> Self {
        let degrees: Vec<usize> = g.node_ids().map(|v| g.degree(v)).collect();
        let max = degrees.iter().copied().max().unwrap_or(0);
        let mean = if degrees.is_empty() {
            0.0
        } else {
            degrees.iter().sum::<usize>() as f64 / degrees.len() as f64
        };
        let mut histogram = vec![0usize; max + 1];
        for &d in &degrees {
            histogram[d] += 1;
        }
        let high_degree = degrees.iter().filter(|&&d| d >= 5).count();
        GraphStats {
            nodes: g.len(),
            edges: g.edge_count(),
            degrees: DegreeStats {
                max,
                mean,
                high_degree,
                histogram,
            },
            step_flops: g.total_step_flops(),
            params: g.total_params(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dim::{DimRole, IterDim};
    use crate::graph::GraphBuilder;
    use crate::node::Node;
    use crate::op::OpKind;
    use crate::tensor::TensorRef;

    fn ew(name: &str, ins: usize) -> Node {
        Node {
            name: name.into(),
            op: OpKind::Elementwise {
                flops_per_point: 1.0,
            },
            iter_space: vec![IterDim::new("b", 4, DimRole::Batch)],
            inputs: (0..ins).map(|_| TensorRef::new(vec![0], vec![4])).collect(),
            output: TensorRef::new(vec![0], vec![4]),
            params: vec![],
        }
    }

    #[test]
    fn star_graph_stats() {
        // hub feeding 5 leaves: hub degree 5 → one high-degree node.
        let mut b = GraphBuilder::new();
        let hub = b.add_node(ew("hub", 0));
        for i in 0..5 {
            let leaf = b.add_node(ew(&format!("l{i}"), 1));
            b.connect(hub, leaf);
        }
        let g = b.build().unwrap();
        let s = GraphStats::of(&g);
        assert_eq!(s.nodes, 6);
        assert_eq!(s.edges, 5);
        assert_eq!(s.degrees.max, 5);
        assert_eq!(s.degrees.high_degree, 1);
        assert_eq!(s.degrees.histogram[1], 5);
        assert_eq!(s.degrees.histogram[5], 1);
        assert!((s.degrees.mean - 10.0 / 6.0).abs() < 1e-12);
    }

    #[test]
    fn empty_graph_stats() {
        let g = GraphBuilder::new().build().unwrap();
        let s = GraphStats::of(&g);
        assert_eq!(s.nodes, 0);
        assert_eq!(s.degrees.max, 0);
        assert_eq!(s.degrees.mean, 0.0);
    }
}
