//! Strongly-typed node and edge identifiers.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier of a node (layer) in a [`crate::Graph`].
///
/// Stored as a `u32` to keep hot search structures compact (see the type-size
/// guidance in the Rust performance literature); a DNN computation graph has
/// at most a few thousand layers.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct NodeId(pub u32);

/// Identifier of a directed edge (tensor flow) in a [`crate::Graph`].
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct EdgeId(pub u32);

impl NodeId {
    /// The node's position in the graph's node list.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl EdgeId {
    /// The edge's position in the graph's edge list.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl fmt::Debug for EdgeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "e{}", self.0)
    }
}

impl fmt::Display for EdgeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "e{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_id_roundtrip() {
        let n = NodeId(7);
        assert_eq!(n.index(), 7);
        assert_eq!(format!("{n}"), "n7");
        assert_eq!(format!("{n:?}"), "n7");
    }

    #[test]
    fn edge_id_roundtrip() {
        let e = EdgeId(3);
        assert_eq!(e.index(), 3);
        assert_eq!(format!("{e}"), "e3");
    }

    #[test]
    fn ids_are_ordered_by_index() {
        assert!(NodeId(1) < NodeId(2));
        assert!(EdgeId(0) < EdgeId(9));
    }
}
