//! Tensor ↔ iteration-space maps.
//!
//! PaSE's transfer cost `t_x(u, v, φ)` (§II) is defined in terms of the
//! *volumes* of tensor blocks needed/held per device. To compute these, the
//! cost model must know how a tensor's dimensions relate to the iteration
//! space of the producing and consuming layers: splitting an iteration-space
//! dimension shards every tensor dimension mapped to it, and *replicates* the
//! tensor across splits of unmapped dimensions.

use serde::Serialize;

/// A tensor (input, output, or parameter) of a node, described by the
/// iteration-space dimensions that index it.
///
/// `dims[t]` is the index (into the node's iteration space) of the dimension
/// that indexes tensor dimension `t`; `sizes[t]` is that tensor dimension's
/// extent. `sizes[t]` usually equals the iteration dimension's extent but may
/// differ (e.g. a strided convolution's input spatial extent vs. its output
/// iteration extent) — sharding granularity follows the iteration dimension,
/// volume follows `sizes`.
#[derive(Clone, Debug, PartialEq, Serialize)]
pub struct TensorRef {
    /// For each tensor dimension, the iteration-space dimension indexing it.
    pub dims: Vec<u32>,
    /// Extent of each tensor dimension.
    pub sizes: Vec<u64>,
    /// Bytes per element (4 for f32 throughout the paper's models).
    pub elem_bytes: u32,
}

/// Default element width: single-precision floats.
pub const F32_BYTES: u32 = 4;

impl TensorRef {
    /// A tensor whose dimension `t` is indexed by iteration dimension
    /// `dims[t]` with extent `sizes[t]`, in f32.
    pub fn new(dims: Vec<u32>, sizes: Vec<u64>) -> Self {
        assert_eq!(dims.len(), sizes.len(), "dims/sizes length mismatch");
        Self {
            dims,
            sizes,
            elem_bytes: F32_BYTES,
        }
    }

    /// A tensor whose dimensions coincide exactly with the given
    /// iteration-space dimensions (the common case), with extents taken from
    /// the provided extents slice indexed by `dims`.
    pub fn aligned(dims: Vec<u32>, iter_sizes: &[u64]) -> Self {
        let sizes = dims.iter().map(|&d| iter_sizes[d as usize]).collect();
        Self {
            dims,
            sizes,
            elem_bytes: F32_BYTES,
        }
    }

    /// Number of tensor dimensions.
    pub fn rank(&self) -> usize {
        self.dims.len()
    }

    /// Total number of elements.
    pub fn elements(&self) -> f64 {
        self.sizes.iter().map(|&s| s as f64).product()
    }

    /// Total size in bytes.
    pub fn bytes(&self) -> f64 {
        self.elements() * f64::from(self.elem_bytes)
    }

    /// Whether iteration dimension `iter_dim` indexes this tensor.
    pub fn maps_dim(&self, iter_dim: u32) -> bool {
        self.dims.contains(&iter_dim)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn volume_and_bytes() {
        let t = TensorRef::new(vec![0, 2], vec![16, 8]);
        assert_eq!(t.rank(), 2);
        assert_eq!(t.elements(), 128.0);
        assert_eq!(t.bytes(), 512.0);
    }

    #[test]
    fn aligned_takes_sizes_from_iteration_space() {
        let iter_sizes = [64u64, 100, 32];
        let t = TensorRef::aligned(vec![2, 0], &iter_sizes);
        assert_eq!(t.sizes, vec![32, 64]);
    }

    #[test]
    fn maps_dim_checks_membership() {
        let t = TensorRef::new(vec![1, 3], vec![2, 2]);
        assert!(t.maps_dim(1));
        assert!(t.maps_dim(3));
        assert!(!t.maps_dim(0));
    }

    #[test]
    fn scalar_tensor_has_one_element() {
        let t = TensorRef::new(vec![], vec![]);
        assert_eq!(t.elements(), 1.0);
        assert_eq!(t.bytes(), 4.0);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn mismatched_lengths_panic() {
        let _ = TensorRef::new(vec![0], vec![1, 2]);
    }
}
