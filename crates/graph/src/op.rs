//! Layer taxonomy.
//!
//! PaSE derives per-layer costs analytically, "parametrized for problem
//! sizes, for different types of layers" (§II). [`OpKind`] identifies the
//! layer type; the iteration space and tensor maps attached to the [`Node`]
//! carry the problem sizes. The kind influences:
//!
//! * the compute coefficient (FLOPs per iteration point),
//! * the backward-pass multiplier (layers with parameters need a
//!   weight-gradient pass in addition to the data-gradient pass),
//! * special intra-layer communication (halo exchange for convolutions,
//!   per-timestep hidden-state reductions and pipeline bubbles for the
//!   single-vertex RNN operator).
//!
//! [`Node`]: crate::Node

use serde::{Deserialize, Serialize};

/// The type of computation a node performs.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum OpKind {
    /// 2-D convolution with the given filter extent and stride. Iteration
    /// space convention: `(b, c, h, w, n, r, s)` — batch, in-channel,
    /// output height/width, out-channel, filter height/width (Table II).
    Conv2d {
        /// Filter height (`r` extent).
        kernel_h: u32,
        /// Filter width (`s` extent).
        kernel_w: u32,
        /// Spatial stride (same in both dimensions).
        stride: u32,
    },
    /// 2-D max/avg pooling. Iteration space `(b, c, h, w)`.
    Pool2d {
        /// Pooling window extent.
        kernel: u32,
        /// Pooling stride.
        stride: u32,
    },
    /// Fully-connected layer / GEMM. Iteration space `(b, n, c)` — batch,
    /// out-features, in-features (`(i, j, k)` of the paper's §II example).
    FullyConnected,
    /// Plain matrix multiplication without trainable parameters (e.g. the
    /// `QKᵀ` product inside attention when modeled at fine granularity).
    Matmul,
    /// Softmax (+ cross-entropy loss when terminal). Iteration space
    /// `(b, n)` or `(b, s, v)`.
    Softmax,
    /// Embedding lookup, modeled as one-hot × table GEMM. Iteration space
    /// `(b, s, d, v)` with `v` as the contraction dimension.
    Embedding,
    /// A whole multi-layer recurrent (LSTM) operator represented as a
    /// *single vertex* with iteration space `(l, b, s, d, e)` (§IV-A):
    /// layers, batch, sequence, input/embedding dim, hidden dim. Splitting
    /// `l`/`s` captures intra-operator pipeline parallelism.
    Lstm {
        /// Number of stacked recurrent layers (`l` extent).
        layers: u32,
    },
    /// Fused multi-head attention block (projections + scores + context +
    /// output projection). Iteration space `(b, s, h, c, k)` — batch,
    /// sequence, heads, query channels, key/value channels (Table II).
    Attention,
    /// Position-wise feed-forward block of a Transformer, iteration space
    /// `(b, s, d, e)` — batch, sequence, model dim, hidden dim.
    FeedForward,
    /// Layer normalization (elementwise with small reductions folded in).
    LayerNorm,
    /// Batch normalization.
    BatchNorm,
    /// Generic elementwise op (ReLU, residual add, dropout, …) with an
    /// explicit per-point FLOP coefficient.
    Elementwise {
        /// Forward FLOPs per iteration point.
        flops_per_point: f64,
    },
    /// Concatenation of several inputs along a tensor axis. Pure data
    /// movement: zero FLOPs, costs arise only from `t_x` on its edges.
    Concat,
}

impl OpKind {
    /// Forward FLOPs per iteration-space point.
    ///
    /// GEMM-like ops do one multiply-add (2 FLOPs) per point; the LSTM cell
    /// computes 4 gates (2 GEMMs worth of work per (d|e) point plus gate
    /// nonlinearities), which we fold into a single coefficient.
    pub fn flops_per_point(&self) -> f64 {
        match self {
            OpKind::Conv2d { .. } | OpKind::FullyConnected | OpKind::Matmul | OpKind::Embedding => {
                2.0
            }
            // 4 gate GEMMs over both the input (d) and recurrent (e)
            // contractions, plus pointwise gate math.
            OpKind::Lstm { .. } => 16.0,
            // QKV+output projections and the two score/context products,
            // folded over the (c, k) channel dims.
            OpKind::Attention => 8.0,
            OpKind::FeedForward => 4.0, // two GEMMs (d→e and e→d)
            OpKind::Pool2d { kernel, .. } => f64::from(kernel * kernel),
            OpKind::Softmax => 5.0, // exp + sum + div, amortized
            OpKind::LayerNorm => 8.0,
            OpKind::BatchNorm => 4.0,
            OpKind::Elementwise { flops_per_point } => *flops_per_point,
            OpKind::Concat => 0.0,
        }
    }

    /// Multiplier converting forward FLOPs into forward+backward FLOPs.
    ///
    /// Parametric layers run three GEMM-shaped passes per step (forward,
    /// data-gradient, weight-gradient); non-parametric layers run two.
    pub fn fwd_bwd_factor(&self) -> f64 {
        if self.has_params() {
            3.0
        } else {
            2.0
        }
    }

    /// Whether this op kind conventionally carries trainable parameters.
    pub fn has_params(&self) -> bool {
        matches!(
            self,
            OpKind::Conv2d { .. }
                | OpKind::FullyConnected
                | OpKind::Embedding
                | OpKind::Lstm { .. }
                | OpKind::Attention
                | OpKind::FeedForward
                | OpKind::LayerNorm
                | OpKind::BatchNorm
        )
    }

    /// Short human-readable tag used in reports (Table II style).
    pub fn tag(&self) -> &'static str {
        match self {
            OpKind::Conv2d { .. } => "conv",
            OpKind::Pool2d { .. } => "pool",
            OpKind::FullyConnected => "fc",
            OpKind::Matmul => "matmul",
            OpKind::Softmax => "softmax",
            OpKind::Embedding => "embed",
            OpKind::Lstm { .. } => "lstm",
            OpKind::Attention => "attn",
            OpKind::FeedForward => "ffn",
            OpKind::LayerNorm => "ln",
            OpKind::BatchNorm => "bn",
            OpKind::Elementwise { .. } => "eltwise",
            OpKind::Concat => "concat",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gemm_like_ops_cost_two_flops_per_point() {
        assert_eq!(OpKind::FullyConnected.flops_per_point(), 2.0);
        assert_eq!(
            OpKind::Conv2d {
                kernel_h: 3,
                kernel_w: 3,
                stride: 1
            }
            .flops_per_point(),
            2.0
        );
        assert_eq!(OpKind::Embedding.flops_per_point(), 2.0);
    }

    #[test]
    fn parametric_ops_have_three_pass_backward_factor() {
        assert_eq!(OpKind::FullyConnected.fwd_bwd_factor(), 3.0);
        assert_eq!(OpKind::Softmax.fwd_bwd_factor(), 2.0);
        assert_eq!(OpKind::Concat.fwd_bwd_factor(), 2.0);
    }

    #[test]
    fn concat_is_free_compute() {
        assert_eq!(OpKind::Concat.flops_per_point(), 0.0);
        assert!(!OpKind::Concat.has_params());
    }

    #[test]
    fn pool_cost_scales_with_window() {
        assert_eq!(
            OpKind::Pool2d {
                kernel: 3,
                stride: 2
            }
            .flops_per_point(),
            9.0
        );
    }

    #[test]
    fn tags_are_stable() {
        assert_eq!(OpKind::Lstm { layers: 2 }.tag(), "lstm");
        assert_eq!(OpKind::Attention.tag(), "attn");
    }
}
