//! Graph traversals used by the search algorithms.
//!
//! All traversals here are *edge-direction agnostic* (they walk the
//! undirected neighbor relation `N(v)`), matching the paper's definitions of
//! connected sets and dependent sets; only [`topo_order`] respects edge
//! direction.

use crate::graph::Graph;
use crate::ids::NodeId;
use std::collections::VecDeque;

/// Breadth-first ordering of all vertices (the §III-A baseline ordering).
///
/// Starts from the lowest-index vertex with no in-edges (falling back to
/// `NodeId(0)`), walks undirected adjacency, and appends any vertices of
/// other weakly-connected components afterwards, each component in BFS
/// order.
pub fn bfs_order(g: &Graph) -> Vec<NodeId> {
    let n = g.len();
    let mut order = Vec::with_capacity(n);
    let mut seen = vec![false; n];
    let root = g
        .node_ids()
        .find(|&v| g.in_edges(v).is_empty())
        .unwrap_or(NodeId(0));
    let mut roots: Vec<NodeId> = vec![root];
    roots.extend(g.node_ids().filter(|&v| v != root));
    let mut queue = VecDeque::new();
    for r in roots {
        if n == 0 || seen[r.index()] {
            continue;
        }
        seen[r.index()] = true;
        queue.push_back(r);
        while let Some(v) = queue.pop_front() {
            order.push(v);
            for &u in g.neighbors(v) {
                if !seen[u.index()] {
                    seen[u.index()] = true;
                    queue.push_back(u);
                }
            }
        }
    }
    order
}

/// Depth-first search over the subgraph induced by `within`, starting from
/// `start`: returns all vertices reachable from `start` passing only through
/// vertices of `within` (the `DFS(G, U, v)` helper of Fig. 4). `start` must
/// be in `within`; the result includes `start` and is sorted by node index.
pub fn dfs_reachable_within(g: &Graph, within: &[bool], start: NodeId) -> Vec<NodeId> {
    debug_assert!(within[start.index()], "start vertex not in induced subset");
    let mut seen = vec![false; g.len()];
    let mut stack = vec![start];
    seen[start.index()] = true;
    let mut out = Vec::new();
    while let Some(v) = stack.pop() {
        out.push(v);
        for &u in g.neighbors(v) {
            if within[u.index()] && !seen[u.index()] {
                seen[u.index()] = true;
                stack.push(u);
            }
        }
    }
    out.sort_unstable();
    out
}

/// Weakly-connected components, each sorted by node index; components are
/// ordered by their smallest member.
pub fn components(g: &Graph) -> Vec<Vec<NodeId>> {
    let within = vec![true; g.len()];
    let mut seen = vec![false; g.len()];
    let mut comps = Vec::new();
    for v in g.node_ids() {
        if !seen[v.index()] {
            let comp = dfs_reachable_within(g, &within, v);
            for &u in &comp {
                seen[u.index()] = true;
            }
            comps.push(comp);
        }
    }
    comps
}

/// Whether the graph is weakly connected (the paper assumes this of DNN
/// computation graphs).
pub fn is_weakly_connected(g: &Graph) -> bool {
    g.is_empty() || components(g).len() == 1
}

/// Topological order of the directed graph (Kahn's algorithm). Returns
/// `None` if the graph has a directed cycle.
pub fn topo_order(g: &Graph) -> Option<Vec<NodeId>> {
    let n = g.len();
    let mut indeg: Vec<usize> = (0..n).map(|i| g.in_edges(NodeId(i as u32)).len()).collect();
    let mut queue: VecDeque<NodeId> = g.node_ids().filter(|v| indeg[v.index()] == 0).collect();
    let mut order = Vec::with_capacity(n);
    while let Some(v) = queue.pop_front() {
        order.push(v);
        for &e in g.out_edges(v) {
            let dst = g.edge(e).dst;
            indeg[dst.index()] -= 1;
            if indeg[dst.index()] == 0 {
                queue.push_back(dst);
            }
        }
    }
    (order.len() == n).then_some(order)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dim::{DimRole, IterDim};
    use crate::graph::GraphBuilder;
    use crate::node::Node;
    use crate::op::OpKind;
    use crate::tensor::TensorRef;

    fn ew(name: &str, ins: usize) -> Node {
        Node {
            name: name.into(),
            op: OpKind::Elementwise {
                flops_per_point: 1.0,
            },
            iter_space: vec![IterDim::new("b", 4, DimRole::Batch)],
            inputs: (0..ins).map(|_| TensorRef::new(vec![0], vec![4])).collect(),
            output: TensorRef::new(vec![0], vec![4]),
            params: vec![],
        }
    }

    /// 0 → 1 → 3, 0 → 2 → 3 (diamond), then 3 → 4.
    fn diamond() -> Graph {
        let mut b = GraphBuilder::new();
        let n0 = b.add_node(ew("0", 0));
        let n1 = b.add_node(ew("1", 1));
        let n2 = b.add_node(ew("2", 1));
        let n3 = b.add_node(ew("3", 2));
        let n4 = b.add_node(ew("4", 1));
        b.connect(n0, n1);
        b.connect(n0, n2);
        b.connect(n1, n3);
        b.connect(n2, n3);
        b.connect(n3, n4);
        b.build().unwrap()
    }

    #[test]
    fn bfs_starts_at_source_and_covers_all() {
        let g = diamond();
        let order = bfs_order(&g);
        assert_eq!(order.len(), 5);
        assert_eq!(order[0], NodeId(0));
        let mut sorted = order.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..5).map(NodeId).collect::<Vec<_>>());
    }

    #[test]
    fn dfs_within_respects_induced_subset() {
        let g = diamond();
        // Exclude node 3: from node 1 we can reach {0, 1, 2} but not 4.
        let mut within = vec![true; 5];
        within[3] = false;
        let reach = dfs_reachable_within(&g, &within, NodeId(1));
        assert_eq!(reach, vec![NodeId(0), NodeId(1), NodeId(2)]);
    }

    #[test]
    fn dfs_within_singleton() {
        let g = diamond();
        let mut within = vec![false; 5];
        within[2] = true;
        assert_eq!(
            dfs_reachable_within(&g, &within, NodeId(2)),
            vec![NodeId(2)]
        );
    }

    #[test]
    fn connected_graph_has_one_component() {
        let g = diamond();
        assert!(is_weakly_connected(&g));
        assert_eq!(components(&g).len(), 1);
    }

    #[test]
    fn disconnected_components_are_found() {
        let mut b = GraphBuilder::new();
        let a0 = b.add_node(ew("a0", 0));
        let a1 = b.add_node(ew("a1", 1));
        let c0 = b.add_node(ew("c0", 0));
        b.connect(a0, a1);
        let g = b.build().unwrap();
        assert!(!is_weakly_connected(&g));
        let comps = components(&g);
        assert_eq!(comps, vec![vec![a0, a1], vec![c0]]);
    }

    #[test]
    fn topo_order_respects_edges() {
        let g = diamond();
        let order = topo_order(&g).unwrap();
        let pos: Vec<usize> = (0..5)
            .map(|i| order.iter().position(|v| v.index() == i).unwrap())
            .collect();
        assert!(pos[0] < pos[1] && pos[0] < pos[2]);
        assert!(pos[1] < pos[3] && pos[2] < pos[3] && pos[3] < pos[4]);
    }

    #[test]
    fn topo_order_detects_cycles() {
        let mut b = GraphBuilder::new();
        let x = b.add_node(ew("x", 1));
        let y = b.add_node(ew("y", 1));
        b.connect(x, y);
        b.connect(y, x);
        let g = b.build().unwrap();
        assert!(topo_order(&g).is_none());
        // undirected traversals still work on cyclic graphs
        assert!(is_weakly_connected(&g));
        assert_eq!(bfs_order(&g).len(), 2);
    }

    #[test]
    fn bfs_covers_disconnected_graphs() {
        let mut b = GraphBuilder::new();
        let _ = b.add_node(ew("a", 0));
        let _ = b.add_node(ew("b", 0));
        let g = b.build().unwrap();
        assert_eq!(bfs_order(&g).len(), 2);
    }
}
