//! Induced subgraph extraction.
//!
//! Used by the pipeline-composition layer (PaSE §VI suggests first
//! splitting the graph into PipeDream-style stages and then running the
//! data+parameter search *within* each stage): a stage is the subgraph
//! induced by a subset of vertices, with boundary-crossing edges dropped
//! (their tensors become the stage's external inputs/outputs, accounted as
//! pipeline transfers by the caller).

use crate::graph::{Graph, GraphBuilder};
use crate::ids::NodeId;

/// The subgraph of `g` induced by `keep`, plus the mapping from new node
/// ids (by index) back to the original ids.
///
/// Nodes are emitted in ascending original-id order. Input slots fed by
/// dropped boundary edges are removed from the node's declared inputs
/// (remaining slots are re-indexed in original slot order), turning
/// boundary consumers into stage sources.
pub fn induced_subgraph(g: &Graph, keep: &[NodeId]) -> (Graph, Vec<NodeId>) {
    let mut kept = vec![false; g.len()];
    for &v in keep {
        kept[v.index()] = true;
    }
    let mut order: Vec<NodeId> = keep.to_vec();
    order.sort_unstable();
    order.dedup();

    let mut new_id = vec![usize::MAX; g.len()];
    for (i, &v) in order.iter().enumerate() {
        new_id[v.index()] = i;
    }

    let mut b = GraphBuilder::new();
    // (new_src, new_dst, original slot) for kept edges; slots re-indexed
    // after trimming.
    let mut kept_edges: Vec<(usize, usize, u32)> = Vec::new();
    for e in g.edges() {
        if kept[e.src.index()] && kept[e.dst.index()] {
            kept_edges.push((new_id[e.src.index()], new_id[e.dst.index()], e.dst_slot));
        }
    }

    for &v in &order {
        let node = g.node(v);
        // Which of this node's input slots survive?
        let mut surviving: Vec<u32> = kept_edges
            .iter()
            .filter(|&&(_, dst, _)| dst == new_id[v.index()])
            .map(|&(_, _, slot)| slot)
            .collect();
        surviving.sort_unstable();
        let mut trimmed = node.clone();
        trimmed.inputs = surviving
            .iter()
            .map(|&slot| node.inputs[slot as usize].clone())
            .collect();
        // Re-index the edges feeding this node.
        for edge in kept_edges
            .iter_mut()
            .filter(|(_, dst, _)| *dst == new_id[v.index()])
        {
            edge.2 = surviving
                .iter()
                .position(|&s| s == edge.2)
                .expect("slot kept") as u32;
        }
        b.add_node(trimmed);
    }
    for (src, dst, slot) in kept_edges {
        b.connect_slot(NodeId(src as u32), NodeId(dst as u32), slot);
    }
    (b.build().expect("induced subgraph is well-formed"), order)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dim::{DimRole, IterDim};
    use crate::node::Node;
    use crate::op::OpKind;
    use crate::tensor::TensorRef;

    fn ew(name: &str, ins: usize) -> Node {
        Node {
            name: name.into(),
            op: OpKind::Elementwise {
                flops_per_point: 1.0,
            },
            iter_space: vec![IterDim::new("b", 4, DimRole::Batch)],
            inputs: (0..ins).map(|_| TensorRef::new(vec![0], vec![4])).collect(),
            output: TensorRef::new(vec![0], vec![4]),
            params: vec![],
        }
    }

    /// 0 → 1 → 2 → 3 with a skip 1 → 3.
    fn skip_chain() -> Graph {
        let mut b = GraphBuilder::new();
        let n0 = b.add_node(ew("0", 0));
        let n1 = b.add_node(ew("1", 1));
        let n2 = b.add_node(ew("2", 1));
        let n3 = b.add_node(ew("3", 2));
        b.connect(n0, n1);
        b.connect(n1, n2);
        b.connect(n2, n3);
        b.connect(n1, n3);
        b.build().unwrap()
    }

    #[test]
    fn keeps_interior_edges_and_drops_boundary() {
        let g = skip_chain();
        let (sub, mapping) = induced_subgraph(&g, &[NodeId(2), NodeId(3)]);
        assert_eq!(sub.len(), 2);
        assert_eq!(mapping, vec![NodeId(2), NodeId(3)]);
        // only the 2→3 edge survives; node 3's other slot is trimmed
        assert_eq!(sub.edge_count(), 1);
        assert_eq!(sub.node(NodeId(1)).inputs.len(), 1);
        // node 2 lost its single input edge and became a source
        assert_eq!(sub.in_edges(NodeId(0)).len(), 0);
    }

    #[test]
    fn full_subgraph_is_isomorphic() {
        let g = skip_chain();
        let all: Vec<NodeId> = g.node_ids().collect();
        let (sub, mapping) = induced_subgraph(&g, &all);
        assert_eq!(sub.len(), g.len());
        assert_eq!(sub.edge_count(), g.edge_count());
        assert_eq!(mapping, all);
        for v in g.node_ids() {
            assert_eq!(sub.node(v).name, g.node(v).name);
            assert_eq!(sub.degree(v), g.degree(v));
        }
    }

    #[test]
    fn slot_reindexing_preserves_tensor_association() {
        // node 3 keeps only its slot-1 input (from node 1) when node 2 is
        // dropped; the surviving input must be re-indexed to slot 0.
        let g = skip_chain();
        let (sub, mapping) = induced_subgraph(&g, &[NodeId(1), NodeId(3)]);
        assert_eq!(mapping, vec![NodeId(1), NodeId(3)]);
        assert_eq!(sub.edge_count(), 1);
        let e = sub.edges()[0];
        assert_eq!(e.dst_slot, 0);
        assert_eq!(sub.node(e.dst).inputs.len(), 1);
    }

    #[test]
    fn empty_selection_yields_empty_graph() {
        let g = skip_chain();
        let (sub, mapping) = induced_subgraph(&g, &[]);
        assert!(sub.is_empty());
        assert!(mapping.is_empty());
    }
}
