//! Graph nodes (layers).

use crate::dim::{space_points, IterDim};
use crate::op::OpKind;
use crate::tensor::TensorRef;
use serde::Serialize;

/// One layer of the DNN: an operation, its iteration space, and the tensor
/// maps the cost model needs to reason about shardings.
#[derive(Clone, Debug, Serialize)]
pub struct Node {
    /// Human-readable name (e.g. `"conv3"`, `"inceptionE1/concat"`).
    pub name: String,
    /// What the layer computes.
    pub op: OpKind,
    /// The iteration space: one entry per parallelizable dimension
    /// (PaSE §II). A configuration for this node is a tuple of split
    /// factors of the same length.
    pub iter_space: Vec<IterDim>,
    /// Input tensor maps, one per incoming edge *slot* (edge order matters:
    /// the `k`-th in-edge feeds `inputs[k]`).
    pub inputs: Vec<TensorRef>,
    /// Output tensor map (each node produces exactly one tensor; fan-out is
    /// expressed by multiple out-edges carrying the same tensor).
    pub output: TensorRef,
    /// Trainable parameter tensor maps (empty for non-parametric ops).
    pub params: Vec<TensorRef>,
}

impl Node {
    /// Number of iteration-space dimensions (the length of a valid
    /// configuration tuple for this node).
    pub fn rank(&self) -> usize {
        self.iter_space.len()
    }

    /// Total iteration-space points.
    pub fn points(&self) -> f64 {
        space_points(&self.iter_space)
    }

    /// Forward-pass FLOPs for one training step at full (unsplit) size.
    pub fn fwd_flops(&self) -> f64 {
        self.points() * self.op.flops_per_point()
    }

    /// Forward + backward FLOPs for one training step.
    pub fn step_flops(&self) -> f64 {
        self.fwd_flops() * self.op.fwd_bwd_factor()
    }

    /// Total trainable parameter elements.
    pub fn param_elements(&self) -> f64 {
        self.params.iter().map(TensorRef::elements).sum()
    }

    /// Extent of the iteration dimension with the given name, if present.
    pub fn dim_size(&self, name: &str) -> Option<u64> {
        self.iter_space
            .iter()
            .find(|d| d.name == name)
            .map(|d| d.size)
    }

    /// Index of the iteration dimension with the given name, if present.
    pub fn dim_index(&self, name: &str) -> Option<usize> {
        self.iter_space.iter().position(|d| d.name == name)
    }

    /// Names of the iteration dimensions, concatenated (Table II
    /// "Dimensions" column, e.g. `"bchwnrs"`).
    pub fn dims_string(&self) -> String {
        self.iter_space.iter().map(|d| d.name).collect()
    }

    /// Validate internal consistency: every tensor map must reference only
    /// existing iteration dimensions.
    pub(crate) fn validate(&self) -> Result<(), String> {
        let rank = self.rank() as u32;
        let check = |t: &TensorRef, what: &str| -> Result<(), String> {
            for &d in &t.dims {
                if d >= rank {
                    return Err(format!(
                        "node '{}': {what} references iteration dim {d} but rank is {rank}",
                        self.name
                    ));
                }
            }
            Ok(())
        };
        for (k, t) in self.inputs.iter().enumerate() {
            check(t, &format!("input[{k}]"))?;
        }
        check(&self.output, "output")?;
        for (k, t) in self.params.iter().enumerate() {
            check(t, &format!("param[{k}]"))?;
        }
        for d in &self.iter_space {
            if d.size == 0 {
                return Err(format!(
                    "node '{}': dim '{}' has zero extent",
                    self.name, d.name
                ));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dim::DimRole;

    fn gemm_node() -> Node {
        // b=4, n=8, c=16 fully-connected layer.
        let iter_space = vec![
            IterDim::new("b", 4, DimRole::Batch),
            IterDim::new("n", 8, DimRole::Param),
            IterDim::new("c", 16, DimRole::Reduction),
        ];
        let sizes: Vec<u64> = iter_space.iter().map(|d| d.size).collect();
        Node {
            name: "fc".into(),
            op: OpKind::FullyConnected,
            iter_space,
            inputs: vec![TensorRef::aligned(vec![0, 2], &sizes)],
            output: TensorRef::aligned(vec![0, 1], &sizes),
            params: vec![TensorRef::aligned(vec![1, 2], &sizes)],
        }
    }

    #[test]
    fn gemm_flops_match_hand_computation() {
        let n = gemm_node();
        assert_eq!(n.points(), 4.0 * 8.0 * 16.0);
        assert_eq!(n.fwd_flops(), 2.0 * 512.0); // 2·M·N·K
        assert_eq!(n.step_flops(), 3.0 * 1024.0); // fwd + dgrad + wgrad
        assert_eq!(n.param_elements(), 128.0); // 8×16 weight
    }

    #[test]
    fn dim_lookup_by_name() {
        let n = gemm_node();
        assert_eq!(n.dim_size("c"), Some(16));
        assert_eq!(n.dim_index("n"), Some(1));
        assert_eq!(n.dim_size("z"), None);
        assert_eq!(n.dims_string(), "bnc");
    }

    #[test]
    fn validate_accepts_well_formed_node() {
        assert!(gemm_node().validate().is_ok());
    }

    #[test]
    fn validate_rejects_out_of_range_tensor_dim() {
        let mut n = gemm_node();
        n.output.dims[0] = 9;
        assert!(n.validate().is_err());
    }

    #[test]
    fn validate_rejects_zero_extent() {
        let mut n = gemm_node();
        n.iter_space[0].size = 0;
        assert!(n.validate().is_err());
    }
}
