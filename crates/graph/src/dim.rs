//! Iteration-space dimensions.
//!
//! Each node `v` has an associated *iteration space* (PaSE §II): the set of
//! integer points computed by the layer. A fully-connected layer multiplying
//! `A[M×K] · B[K×N]` has the 3-d iteration space `{(i,j,k) | i<M, j<N, k<K}`.
//! A *parallelization configuration* later splits each of these dimensions
//! across devices.

use serde::Serialize;

/// Semantic role of an iteration-space dimension.
///
/// The role drives the intra-layer communication terms of the cost model
/// (`t_l` in PaSE Eq. (1)): splitting a [`DimRole::Reduction`] dimension
/// requires a partial-sum reduction; splitting a [`DimRole::Spatial`]
/// dimension of a convolution incurs halo exchange; splitting a
/// [`DimRole::Pipeline`] dimension of an RNN operator exploits intra-layer
/// pipeline parallelism.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize)]
pub enum DimRole {
    /// Mini-batch dimension; splitting it is classic data parallelism.
    Batch,
    /// Image/feature-map spatial dimension (height or width). Splitting it
    /// under a convolution with kernel > 1 incurs halo exchange.
    Spatial,
    /// A dimension that indexes model parameters and the output but is not
    /// contracted over (e.g. the out-channel dimension of a convolution or
    /// the `j`/output dimension of a GEMM). Splitting it is parameter
    /// parallelism.
    Param,
    /// A contraction dimension (e.g. `k` of a GEMM, the in-channel and
    /// filter dims of a convolution, the vocabulary dim of an embedding
    /// lookup). Splitting it produces partial results that must be reduced.
    Reduction,
    /// A dimension whose split realizes intra-operator pipeline parallelism
    /// (the `layer` and `sequence` dimensions of the single-vertex RNN
    /// operator, PaSE §IV-A).
    Pipeline,
}

/// One named, sized dimension of a node's iteration space.
#[derive(Clone, Debug, PartialEq, Eq, Hash, Serialize)]
pub struct IterDim {
    /// Short name following the paper's Table II legend (`b`, `c`, `h`, `w`,
    /// `n`, `r`, `s`, `l`, `d`, `e`, `v`, `k`, …).
    pub name: &'static str,
    /// Extent of the dimension.
    pub size: u64,
    /// Semantic role (drives intra-layer communication costs).
    pub role: DimRole,
    /// Whether a configuration may split this dimension. Filter dimensions
    /// (`r`, `s`) of convolutions are conventionally unsplittable.
    pub splittable: bool,
}

impl IterDim {
    /// A splittable dimension with the given name, size and role.
    pub fn new(name: &'static str, size: u64, role: DimRole) -> Self {
        Self {
            name,
            size,
            role,
            splittable: true,
        }
    }

    /// A dimension that configurations must leave whole (split factor 1).
    pub fn fixed(name: &'static str, size: u64, role: DimRole) -> Self {
        Self {
            name,
            size,
            role,
            splittable: false,
        }
    }
}

/// Total number of points in an iteration space (product of extents).
pub(crate) fn space_points(dims: &[IterDim]) -> f64 {
    dims.iter().map(|d| d.size as f64).product()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn iterdim_constructors() {
        let d = IterDim::new("b", 128, DimRole::Batch);
        assert!(d.splittable);
        assert_eq!(d.size, 128);
        let f = IterDim::fixed("r", 3, DimRole::Reduction);
        assert!(!f.splittable);
        assert_eq!(f.role, DimRole::Reduction);
    }

    #[test]
    fn space_points_is_product_of_extents() {
        let dims = vec![
            IterDim::new("i", 4, DimRole::Batch),
            IterDim::new("j", 8, DimRole::Param),
            IterDim::new("k", 2, DimRole::Reduction),
        ];
        assert_eq!(space_points(&dims), 64.0);
    }

    #[test]
    fn space_points_of_empty_space_is_one() {
        assert_eq!(space_points(&[]), 1.0);
    }
}
