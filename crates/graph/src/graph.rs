//! The computation graph and its builder.

use crate::ids::{EdgeId, NodeId};
use crate::node::Node;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A directed edge: the output tensor of `src` flows into input slot
/// `dst_slot` of `dst`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Edge {
    /// Producing node.
    pub src: NodeId,
    /// Consuming node.
    pub dst: NodeId,
    /// Which input slot of `dst` this edge feeds (index into
    /// `Node::inputs`).
    pub dst_slot: u32,
}

/// Errors raised by [`GraphBuilder::build`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GraphError {
    /// A node failed internal validation.
    InvalidNode(String),
    /// An edge references a slot that the destination node does not declare,
    /// or a slot is fed by more than one edge / left unconnected.
    InvalidEdge(String),
    /// A cluster/topology shape is degenerate (zero devices or nodes).
    /// Raised by consumers that validate execution shapes (e.g. the
    /// simulator's `Topology`) rather than by [`GraphBuilder::build`]
    /// itself, so shape violations flow through the same error channel as
    /// graph violations instead of panicking.
    InvalidShape(String),
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::InvalidNode(m) => write!(f, "invalid node: {m}"),
            GraphError::InvalidEdge(m) => write!(f, "invalid edge: {m}"),
            GraphError::InvalidShape(m) => write!(f, "invalid shape: {m}"),
        }
    }
}

impl std::error::Error for GraphError {}

/// An immutable DNN computation graph `G = (V, E)` (PaSE §II).
///
/// Adjacency is stored both directed (for tensor-flow semantics) and
/// undirected (the search algorithms are edge-direction agnostic: `N(v)`
/// unions in- and out-neighbors, and `t_x` covers both forward and backward
/// transfers).
#[derive(Clone, Debug, Serialize)]
pub struct Graph {
    nodes: Vec<Node>,
    edges: Vec<Edge>,
    out_edges: Vec<Vec<EdgeId>>,
    in_edges: Vec<Vec<EdgeId>>,
    /// Deduplicated undirected neighbor lists, sorted by node index.
    neighbors: Vec<Vec<NodeId>>,
}

impl Graph {
    /// Number of nodes `|V|`.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the graph has no nodes.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Number of directed edges `|E|`.
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// The node with the given id.
    pub fn node(&self, id: NodeId) -> &Node {
        &self.nodes[id.index()]
    }

    /// All nodes, indexable by `NodeId::index`.
    pub fn nodes(&self) -> &[Node] {
        &self.nodes
    }

    /// Iterate over `(NodeId, &Node)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (NodeId, &Node)> {
        self.nodes
            .iter()
            .enumerate()
            .map(|(i, n)| (NodeId(i as u32), n))
    }

    /// The edge with the given id.
    pub fn edge(&self, id: EdgeId) -> &Edge {
        &self.edges[id.index()]
    }

    /// All edges, indexable by `EdgeId::index`.
    pub fn edges(&self) -> &[Edge] {
        &self.edges
    }

    /// Edges produced by `v`.
    pub fn out_edges(&self, v: NodeId) -> &[EdgeId] {
        &self.out_edges[v.index()]
    }

    /// Edges consumed by `v`.
    pub fn in_edges(&self, v: NodeId) -> &[EdgeId] {
        &self.in_edges[v.index()]
    }

    /// Undirected neighbors `N(v) = {u | (u,v) ∈ E ∨ (v,u) ∈ E}`,
    /// deduplicated and sorted by index.
    pub fn neighbors(&self, v: NodeId) -> &[NodeId] {
        &self.neighbors[v.index()]
    }

    /// Undirected degree `|N(v)|` (parallel edges between the same pair of
    /// nodes count once, matching the paper's set-valued `N(v)`).
    pub fn degree(&self, v: NodeId) -> usize {
        self.neighbors[v.index()].len()
    }

    /// All node ids in index order.
    pub fn node_ids(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.nodes.len() as u32).map(NodeId)
    }

    /// Sum of `Node::step_flops` over all nodes: the sequential work of one
    /// training step.
    pub fn total_step_flops(&self) -> f64 {
        self.nodes.iter().map(Node::step_flops).sum()
    }

    /// Total trainable parameters of the model.
    pub fn total_params(&self) -> f64 {
        self.nodes.iter().map(Node::param_elements).sum()
    }
}

/// Incremental builder for [`Graph`].
///
/// ```
/// use pase_graph::{DimRole, GraphBuilder, IterDim, Node, OpKind, TensorRef};
///
/// let mut b = GraphBuilder::new();
/// let sizes = [64u64, 10];
/// let fc = b.add_node(Node {
///     name: "fc".into(),
///     op: OpKind::FullyConnected,
///     iter_space: vec![
///         IterDim::new("b", 64, DimRole::Batch),
///         IterDim::new("n", 10, DimRole::Param),
///     ],
///     inputs: vec![],
///     output: TensorRef::aligned(vec![0, 1], &sizes),
///     params: vec![],
/// });
/// let g = b.build().unwrap();
/// assert_eq!(g.len(), 1);
/// assert_eq!(g.degree(fc), 0);
/// ```
#[derive(Default)]
pub struct GraphBuilder {
    nodes: Vec<Node>,
    edges: Vec<Edge>,
}

impl GraphBuilder {
    /// An empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Append a node, returning its id.
    pub fn add_node(&mut self, node: Node) -> NodeId {
        let id = NodeId(self.nodes.len() as u32);
        self.nodes.push(node);
        id
    }

    /// Connect `src`'s output to the next free input slot of `dst`,
    /// returning the edge id. Slots are assigned in call order.
    pub fn connect(&mut self, src: NodeId, dst: NodeId) -> EdgeId {
        let slot = self.edges.iter().filter(|e| e.dst == dst).count() as u32;
        self.connect_slot(src, dst, slot)
    }

    /// Connect `src`'s output to a specific input slot of `dst`.
    pub fn connect_slot(&mut self, src: NodeId, dst: NodeId, dst_slot: u32) -> EdgeId {
        let id = EdgeId(self.edges.len() as u32);
        self.edges.push(Edge { src, dst, dst_slot });
        id
    }

    /// Number of nodes added so far.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Read access to a node added earlier (useful while wiring models).
    pub fn node(&self, id: NodeId) -> &Node {
        &self.nodes[id.index()]
    }

    /// Finalize into an immutable [`Graph`], validating nodes and edge/slot
    /// consistency.
    pub fn build(self) -> Result<Graph, GraphError> {
        let n = self.nodes.len();
        for node in &self.nodes {
            node.validate().map_err(GraphError::InvalidNode)?;
        }
        let mut out_edges = vec![Vec::new(); n];
        let mut in_edges = vec![Vec::new(); n];
        let mut slot_seen = vec![Vec::<u32>::new(); n];
        for (i, e) in self.edges.iter().enumerate() {
            if e.src.index() >= n || e.dst.index() >= n {
                return Err(GraphError::InvalidEdge(format!(
                    "edge {i} references nonexistent node"
                )));
            }
            if e.src == e.dst {
                return Err(GraphError::InvalidEdge(format!("edge {i} is a self-loop")));
            }
            let dst = &self.nodes[e.dst.index()];
            if (e.dst_slot as usize) >= dst.inputs.len() {
                return Err(GraphError::InvalidEdge(format!(
                    "edge {i} feeds slot {} of '{}' which declares {} inputs",
                    e.dst_slot,
                    dst.name,
                    dst.inputs.len()
                )));
            }
            if slot_seen[e.dst.index()].contains(&e.dst_slot) {
                return Err(GraphError::InvalidEdge(format!(
                    "slot {} of '{}' is fed by multiple edges",
                    e.dst_slot, dst.name
                )));
            }
            slot_seen[e.dst.index()].push(e.dst_slot);
            out_edges[e.src.index()].push(EdgeId(i as u32));
            in_edges[e.dst.index()].push(EdgeId(i as u32));
        }
        // Every declared input slot must be fed — except for pure *source*
        // nodes (no in-edges at all), whose declared inputs describe
        // external data tensors (images, token ids) from the data pipeline.
        for (i, node) in self.nodes.iter().enumerate() {
            if !slot_seen[i].is_empty() && slot_seen[i].len() != node.inputs.len() {
                return Err(GraphError::InvalidEdge(format!(
                    "node '{}' declares {} inputs but {} slots are connected",
                    node.name,
                    node.inputs.len(),
                    slot_seen[i].len()
                )));
            }
        }
        let mut neighbors: Vec<Vec<NodeId>> = vec![Vec::new(); n];
        for e in &self.edges {
            neighbors[e.src.index()].push(e.dst);
            neighbors[e.dst.index()].push(e.src);
        }
        for nb in &mut neighbors {
            nb.sort_unstable();
            nb.dedup();
        }
        Ok(Graph {
            nodes: self.nodes,
            edges: self.edges,
            out_edges,
            in_edges,
            neighbors,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dim::{DimRole, IterDim};
    use crate::op::OpKind;
    use crate::tensor::TensorRef;

    /// A minimal elementwise node over a (b,) iteration space with `ins`
    /// input slots.
    pub(crate) fn ew(name: &str, ins: usize) -> Node {
        let iter_space = vec![IterDim::new("b", 8, DimRole::Batch)];
        Node {
            name: name.into(),
            op: OpKind::Elementwise {
                flops_per_point: 1.0,
            },
            iter_space,
            inputs: (0..ins).map(|_| TensorRef::new(vec![0], vec![8])).collect(),
            output: TensorRef::new(vec![0], vec![8]),
            params: vec![],
        }
    }

    fn chain(k: usize) -> Graph {
        let mut b = GraphBuilder::new();
        let ids: Vec<NodeId> = (0..k)
            .map(|i| b.add_node(ew(&format!("n{i}"), usize::from(i > 0))))
            .collect();
        for w in ids.windows(2) {
            b.connect(w[0], w[1]);
        }
        b.build().unwrap()
    }

    #[test]
    fn chain_adjacency() {
        let g = chain(4);
        assert_eq!(g.len(), 4);
        assert_eq!(g.edge_count(), 3);
        assert_eq!(g.neighbors(NodeId(0)), &[NodeId(1)]);
        assert_eq!(g.neighbors(NodeId(1)), &[NodeId(0), NodeId(2)]);
        assert_eq!(g.degree(NodeId(1)), 2);
        assert_eq!(g.out_edges(NodeId(0)).len(), 1);
        assert_eq!(g.in_edges(NodeId(0)).len(), 0);
    }

    #[test]
    fn diamond_neighbors_are_deduplicated_and_sorted() {
        // 0 -> 1, 0 -> 2, 1 -> 3, 2 -> 3
        let mut b = GraphBuilder::new();
        let n0 = b.add_node(ew("a", 0));
        let n1 = b.add_node(ew("b", 1));
        let n2 = b.add_node(ew("c", 1));
        let n3 = b.add_node(ew("d", 2));
        b.connect(n0, n1);
        b.connect(n0, n2);
        b.connect(n1, n3);
        b.connect(n2, n3);
        let g = b.build().unwrap();
        assert_eq!(g.neighbors(n0), &[n1, n2]);
        assert_eq!(g.neighbors(n3), &[n1, n2]);
        assert_eq!(g.degree(n3), 2);
    }

    #[test]
    fn partially_connected_node_is_rejected() {
        let mut b = GraphBuilder::new();
        let a = b.add_node(ew("a", 0));
        let c = b.add_node(ew("c", 2)); // declares 2 inputs, only 1 connected
        b.connect(a, c);
        assert!(matches!(b.build(), Err(GraphError::InvalidEdge(_))));
    }

    #[test]
    fn fully_unconnected_node_is_a_valid_source() {
        // A node whose declared inputs are external data (images, token
        // ids) has no in-edges and is accepted as a graph source.
        let mut b = GraphBuilder::new();
        let src = b.add_node(ew("input-conv", 1));
        let dst = b.add_node(ew("next", 1));
        b.connect(src, dst);
        let g = b.build().unwrap();
        assert!(g.in_edges(src).is_empty());
        assert_eq!(g.in_edges(dst).len(), 1);
    }

    #[test]
    fn double_fed_slot_is_rejected() {
        let mut b = GraphBuilder::new();
        let a = b.add_node(ew("a", 0));
        let c = b.add_node(ew("c", 0));
        let d = b.add_node(ew("d", 1));
        b.connect_slot(a, d, 0);
        b.connect_slot(c, d, 0);
        assert!(matches!(b.build(), Err(GraphError::InvalidEdge(_))));
    }

    #[test]
    fn self_loop_is_rejected() {
        let mut b = GraphBuilder::new();
        let a = b.add_node(ew("a", 1));
        b.connect(a, a);
        assert!(matches!(b.build(), Err(GraphError::InvalidEdge(_))));
    }

    #[test]
    fn out_of_range_slot_is_rejected() {
        let mut b = GraphBuilder::new();
        let a = b.add_node(ew("a", 0));
        let c = b.add_node(ew("c", 1));
        b.connect_slot(a, c, 5);
        assert!(matches!(b.build(), Err(GraphError::InvalidEdge(_))));
    }

    #[test]
    fn total_step_flops_sums_nodes() {
        let g = chain(3);
        // each node: 8 points × 1 flop × 2 (fwd+bwd, no params)
        assert_eq!(g.total_step_flops(), 3.0 * 16.0);
    }
}
