//! # pase-graph — computation-graph substrate for PaSE
//!
//! A DNN is represented as a weakly connected directed graph `G = (V, E)`
//! (PaSE §II): each node is a layer with an associated *iteration space*,
//! and each edge carries a tensor produced by one layer and consumed by
//! another.
//!
//! This crate provides:
//!
//! * [`Graph`] / [`GraphBuilder`] — the graph itself, with adjacency queries
//!   (`N(v)`, in/out edges), traversals, and validation;
//! * [`IterDim`] / [`DimRole`] — named iteration-space dimensions with sizes
//!   and semantic roles (batch, spatial, parameter, reduction, pipeline);
//! * [`TensorRef`] — the mapping between a tensor's dimensions and the
//!   iteration-space dimensions of the node that produces/consumes it. The
//!   cost model (`pase-cost`) derives shardings, replication, and transfer
//!   volumes purely from these maps;
//! * [`OpKind`] — the layer taxonomy (convolution, fully-connected, LSTM as
//!   a single 5-d vertex, attention, …) with per-op compute coefficients.
//!
//! The crate is deliberately independent of any cost model or search
//! algorithm: it only describes *what* is computed, never *how fast*.

#![warn(missing_docs)]

mod dim;
mod dot;
mod graph;
mod ids;
mod node;
mod op;
mod stats;
mod subgraph;
mod tensor;
mod traverse;

pub use dim::{DimRole, IterDim};
pub use dot::to_dot;
pub use graph::{Edge, Graph, GraphBuilder, GraphError};
pub use ids::{EdgeId, NodeId};
pub use node::Node;
pub use op::OpKind;
pub use stats::{DegreeStats, GraphStats};
pub use subgraph::induced_subgraph;
pub use tensor::TensorRef;
pub use traverse::{bfs_order, components, dfs_reachable_within, is_weakly_connected, topo_order};
