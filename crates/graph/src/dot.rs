//! Graphviz DOT export for inspection of model graphs.

use crate::graph::Graph;
use std::fmt::Write;

/// Render the graph in Graphviz DOT syntax. Node labels carry the layer name,
/// op tag, and iteration-space dimension string (e.g. `conv3 | conv | bchwnrs`).
pub fn to_dot(g: &Graph) -> String {
    let mut s = String::with_capacity(64 * g.len());
    s.push_str("digraph pase {\n  rankdir=TB;\n  node [shape=box, fontsize=10];\n");
    for (id, node) in g.iter() {
        let _ = writeln!(
            s,
            "  {} [label=\"{} | {} | {}\"];",
            id.index(),
            node.name.replace('"', "'"),
            node.op.tag(),
            node.dims_string()
        );
    }
    for e in g.edges() {
        let _ = writeln!(s, "  {} -> {};", e.src.index(), e.dst.index());
    }
    s.push_str("}\n");
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dim::{DimRole, IterDim};
    use crate::graph::GraphBuilder;
    use crate::node::Node;
    use crate::op::OpKind;
    use crate::tensor::TensorRef;

    #[test]
    fn dot_contains_nodes_and_edges() {
        let mut b = GraphBuilder::new();
        let mk = |name: &str, ins: usize| Node {
            name: name.into(),
            op: OpKind::Elementwise {
                flops_per_point: 1.0,
            },
            iter_space: vec![IterDim::new("b", 4, DimRole::Batch)],
            inputs: (0..ins).map(|_| TensorRef::new(vec![0], vec![4])).collect(),
            output: TensorRef::new(vec![0], vec![4]),
            params: vec![],
        };
        let a = b.add_node(mk("alpha", 0));
        let c = b.add_node(mk("beta", 1));
        b.connect(a, c);
        let g = b.build().unwrap();
        let dot = to_dot(&g);
        assert!(dot.contains("digraph pase"));
        assert!(dot.contains("alpha | eltwise | b"));
        assert!(dot.contains("0 -> 1;"));
        assert!(dot.ends_with("}\n"));
    }
}
