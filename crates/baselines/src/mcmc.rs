//! FlexFlow-style MCMC search (PaSE §IV, "FlexFlow" baseline).
//!
//! FlexFlow explores the per-layer parallelization space with a general
//! Markov-chain Monte-Carlo meta-heuristic: propose a random change to a
//! random layer's configuration, evaluate the candidate with a cost oracle
//! (FlexFlow uses an execution simulator fed by on-GPU microbenchmarks),
//! and accept with the Metropolis criterion. As the paper notes, the search
//! "could get stuck in a local minima, returning a sub-optimal strategy",
//! and is seeded with an expert strategy per FlexFlow §6.2.
//!
//! The stopping rule follows the paper's evaluation protocol: the search
//! ends when it has been "unable to improve the best discovered strategy
//! for half the search time", or when it reaches the iteration cap
//! (250,000 in §IV-A).

use pase_cost::CostTables;
use pase_graph::{EdgeId, Graph, NodeId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::time::{Duration, Instant};

/// A cost oracle the MCMC search optimizes against.
///
/// The analytic [`TableOracle`] mirrors PaSE's own cost function; the
/// experiment harness also provides a simulator-backed oracle that mirrors
/// FlexFlow's delta-simulator architecture.
pub trait CostOracle {
    /// Cost of a complete strategy (per-node configuration ids).
    fn full_cost(&self, ids: &[u16]) -> f64;

    /// Cost of `ids` with node `v` changed to `new_cfg`, given that
    /// `current_cost = full_cost(ids)`. The default recomputes from
    /// scratch; oracles should override with an incremental evaluation.
    fn cost_with_change(&self, ids: &[u16], v: NodeId, new_cfg: u16, current_cost: f64) -> f64 {
        let _ = current_cost;
        let mut changed = ids.to_vec();
        changed[v.index()] = new_cfg;
        self.full_cost(&changed)
    }
}

/// Analytic oracle over precomputed [`CostTables`], with O(degree)
/// incremental evaluation.
pub struct TableOracle<'a> {
    graph: &'a Graph,
    tables: &'a CostTables,
}

impl<'a> TableOracle<'a> {
    /// Wrap a graph and its cost tables.
    pub fn new(graph: &'a Graph, tables: &'a CostTables) -> Self {
        Self { graph, tables }
    }

    fn node_local_cost(&self, ids: &[u16], v: NodeId, cfg: u16) -> f64 {
        let mut cost = self.tables.layer_cost(v, cfg);
        for &e in self.graph.out_edges(v) {
            let dst = self.graph.edge(e).dst;
            cost += self.tables.edge_cost(e, cfg, ids[dst.index()]);
        }
        for &e in self.graph.in_edges(v) {
            let src = self.graph.edge(e).src;
            cost += self.tables.edge_cost(e, ids[src.index()], cfg);
        }
        cost
    }
}

impl CostOracle for TableOracle<'_> {
    fn full_cost(&self, ids: &[u16]) -> f64 {
        let mut total = 0.0;
        for v in self.graph.node_ids() {
            total += self.tables.layer_cost(v, ids[v.index()]);
        }
        for (i, e) in self.graph.edges().iter().enumerate() {
            total +=
                self.tables
                    .edge_cost(EdgeId(i as u32), ids[e.src.index()], ids[e.dst.index()]);
        }
        total
    }

    fn cost_with_change(&self, ids: &[u16], v: NodeId, new_cfg: u16, current_cost: f64) -> f64 {
        current_cost - self.node_local_cost(ids, v, ids[v.index()])
            + self.node_local_cost(ids, v, new_cfg)
    }
}

/// MCMC search parameters.
#[derive(Clone, Copy, Debug)]
pub struct McmcOptions {
    /// Iteration cap (the paper uses 250,000).
    pub max_iters: u64,
    /// Metropolis temperature, as a fraction of the initial cost.
    pub temperature: f64,
    /// RNG seed (searches are deterministic per seed).
    pub seed: u64,
    /// Hard wall-clock cap.
    pub max_time: Duration,
    /// Enable the "no improvement for half the search time" stopping rule.
    pub half_time_rule: bool,
}

impl Default for McmcOptions {
    fn default() -> Self {
        Self {
            max_iters: 250_000,
            temperature: 0.02,
            seed: 0xF1EF,
            max_time: Duration::from_secs(600),
            half_time_rule: true,
        }
    }
}

/// MCMC search result.
#[derive(Clone, Debug)]
pub struct McmcResult {
    /// Best strategy discovered (configuration ids into the search's
    /// configuration lists).
    pub best_ids: Vec<u16>,
    /// Oracle cost of the best strategy.
    pub best_cost: f64,
    /// Iterations executed.
    pub iters: u64,
    /// Proposals accepted.
    pub accepted: u64,
    /// Wall-clock time spent.
    pub elapsed: Duration,
}

/// Run the MCMC search from `init_ids`.
///
/// `k` gives the configuration-list length per node (proposals draw
/// uniformly from `0..k[v]`); `oracle` scores candidates.
pub fn mcmc_search<O: CostOracle>(
    graph: &Graph,
    k: &[usize],
    oracle: &O,
    init_ids: Vec<u16>,
    opts: &McmcOptions,
) -> McmcResult {
    assert_eq!(init_ids.len(), graph.len());
    assert_eq!(k.len(), graph.len());
    let start = Instant::now();
    let mut rng = StdRng::seed_from_u64(opts.seed);
    let mut current = init_ids;
    let mut current_cost = oracle.full_cost(&current);
    let mut best = current.clone();
    let mut best_cost = current_cost;
    let temperature = (opts.temperature * current_cost).max(f64::MIN_POSITIVE);
    let mut last_improvement = start;
    let mut accepted = 0u64;
    let mut iters = 0u64;

    let n = graph.len();
    if n == 0 {
        return McmcResult {
            best_ids: vec![],
            best_cost: 0.0,
            iters: 0,
            accepted: 0,
            elapsed: start.elapsed(),
        };
    }

    while iters < opts.max_iters {
        iters += 1;
        // Periodic stop checks (time-based rules are amortized).
        if iters.is_multiple_of(256) {
            let now = Instant::now();
            if now - start > opts.max_time {
                break;
            }
            if opts.half_time_rule {
                let elapsed = now - start;
                let stale = now - last_improvement;
                // Give the chain a meaningful exploration prefix before
                // the staleness rule can fire.
                if iters > opts.max_iters / 8 && stale * 2 > elapsed {
                    break;
                }
            }
        }
        let v = NodeId(rng.gen_range(0..n) as u32);
        let kv = k[v.index()];
        if kv <= 1 {
            continue;
        }
        let new_cfg = rng.gen_range(0..kv) as u16;
        if new_cfg == current[v.index()] {
            continue;
        }
        let cand_cost = oracle.cost_with_change(&current, v, new_cfg, current_cost);
        let delta = cand_cost - current_cost;
        let accept = delta <= 0.0 || rng.gen::<f64>() < (-delta / temperature).exp();
        if accept {
            current[v.index()] = new_cfg;
            current_cost = cand_cost;
            accepted += 1;
            if cand_cost < best_cost {
                best_cost = cand_cost;
                best.copy_from_slice(&current);
                last_improvement = Instant::now();
            }
        }
    }

    McmcResult {
        best_ids: best,
        best_cost,
        iters,
        accepted,
        elapsed: start.elapsed(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pase_cost::{ConfigRule, MachineSpec};
    use pase_graph::{DimRole, GraphBuilder, IterDim, Node, OpKind, TensorRef};

    fn fc(name: &str, ins: usize) -> Node {
        let dims = vec![
            IterDim::new("b", 64, DimRole::Batch),
            IterDim::new("n", 512, DimRole::Param),
            IterDim::new("c", 512, DimRole::Reduction),
        ];
        Node {
            name: name.into(),
            op: OpKind::FullyConnected,
            iter_space: dims,
            inputs: (0..ins)
                .map(|_| TensorRef::new(vec![0, 2], vec![64, 512]))
                .collect(),
            output: TensorRef::new(vec![0, 1], vec![64, 512]),
            params: vec![TensorRef::new(vec![1, 2], vec![512, 512])],
        }
    }

    fn chain(len: usize) -> Graph {
        let mut b = GraphBuilder::new();
        let ids: Vec<_> = (0..len)
            .map(|i| b.add_node(fc(&format!("fc{i}"), usize::from(i > 0))))
            .collect();
        for w in ids.windows(2) {
            b.connect(w[0], w[1]);
        }
        b.build().unwrap()
    }

    fn setup(g: &Graph) -> (CostTables, Vec<usize>) {
        let t = CostTables::build(g, ConfigRule::new(8), &MachineSpec::test_machine());
        let k: Vec<usize> = g.node_ids().map(|v| t.k(v)).collect();
        (t, k)
    }

    #[test]
    fn incremental_evaluation_matches_full() {
        let g = chain(4);
        let (t, k) = setup(&g);
        let oracle = TableOracle::new(&g, &t);
        let ids: Vec<u16> = k.iter().map(|&kk| (kk as u16) - 1).collect();
        let full = oracle.full_cost(&ids);
        for v in g.node_ids() {
            for c in 0..k[v.index()] as u16 {
                let inc = oracle.cost_with_change(&ids, v, c, full);
                let mut changed = ids.clone();
                changed[v.index()] = c;
                let direct = oracle.full_cost(&changed);
                assert!(
                    (inc - direct).abs() <= 1e-6 * direct.abs().max(1.0),
                    "delta mismatch at {v} cfg {c}: {inc} vs {direct}"
                );
            }
        }
    }

    #[test]
    fn mcmc_improves_on_its_seed() {
        let g = chain(4);
        let (t, k) = setup(&g);
        let oracle = TableOracle::new(&g, &t);
        let init: Vec<u16> = vec![0; g.len()];
        let init_cost = oracle.full_cost(&init);
        let res = mcmc_search(
            &g,
            &k,
            &oracle,
            init,
            &McmcOptions {
                max_iters: 20_000,
                half_time_rule: false,
                ..Default::default()
            },
        );
        assert!(res.best_cost <= init_cost);
        assert!(res.accepted > 0);
        assert_eq!(res.best_ids.len(), g.len());
        // The reported best cost must be consistent with the oracle.
        assert!((oracle.full_cost(&res.best_ids) - res.best_cost).abs() <= 1e-6 * res.best_cost);
    }

    #[test]
    fn mcmc_is_deterministic_per_seed() {
        let g = chain(3);
        let (t, k) = setup(&g);
        let oracle = TableOracle::new(&g, &t);
        let opts = McmcOptions {
            max_iters: 5_000,
            half_time_rule: false,
            ..Default::default()
        };
        let a = mcmc_search(&g, &k, &oracle, vec![0; g.len()], &opts);
        let b = mcmc_search(&g, &k, &oracle, vec![0; g.len()], &opts);
        assert_eq!(a.best_ids, b.best_ids);
        assert_eq!(a.best_cost, b.best_cost);
    }

    #[test]
    fn mcmc_respects_iteration_cap() {
        let g = chain(2);
        let (t, k) = setup(&g);
        let oracle = TableOracle::new(&g, &t);
        let res = mcmc_search(
            &g,
            &k,
            &oracle,
            vec![0; g.len()],
            &McmcOptions {
                max_iters: 100,
                half_time_rule: false,
                ..Default::default()
            },
        );
        assert!(res.iters <= 100);
    }
}
