//! Small shared helpers for building baseline configurations.

/// Largest power of two ≤ `x` (and ≥ 1). `pow2_at_most(0)` is 1 so that a
/// degenerate dimension still yields a valid split factor.
pub fn pow2_at_most(x: u64) -> u32 {
    if x <= 1 {
        return 1;
    }
    let p = 1u64 << (63 - x.leading_zeros());
    p.min(u64::from(u32::MAX)) as u32
}

/// Split factor for a dimension of extent `size` when we *want* `want`
/// parts: the largest power of two that divides the wish and fits the
/// extent.
pub fn split_capped(size: u64, want: u32) -> u32 {
    pow2_at_most(u64::from(want).min(size.max(1)))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pow2_at_most_basics() {
        assert_eq!(pow2_at_most(0), 1);
        assert_eq!(pow2_at_most(1), 1);
        assert_eq!(pow2_at_most(2), 2);
        assert_eq!(pow2_at_most(3), 2);
        assert_eq!(pow2_at_most(64), 64);
        assert_eq!(pow2_at_most(1000), 512);
    }

    #[test]
    fn split_capped_respects_extent_and_wish() {
        assert_eq!(split_capped(128, 32), 32);
        assert_eq!(split_capped(10, 32), 8);
        assert_eq!(split_capped(1, 32), 1);
        assert_eq!(split_capped(1000, 7), 4);
    }
}
