//! # pase-baselines — comparison strategies (PaSE §IV)
//!
//! The paper evaluates its DP-found strategies against three families of
//! baselines; this crate implements all of them:
//!
//! * [`data_parallel`] — the standard practice: split every layer's batch
//!   dimension across all devices;
//! * expert-designed strategies:
//!   [`owt`] ("one weird trick", Krizhevsky 2014) for CNNs — data
//!   parallelism for convolutions, parameter parallelism for
//!   fully-connected layers; [`gnmt_expert`] (Wu et al. 2016) for RNNs —
//!   layer-pipeline × data parallelism; [`mesh_tf_expert`] (Shazeer et
//!   al. 2018) for Transformers — batch split `m`-way × model dims split
//!   `n`-way;
//! * [`mcmc_search`] — a FlexFlow-style Markov-chain Monte-Carlo search
//!   over per-node configurations with Metropolis acceptance, seeded with
//!   an expert strategy and stopped by the paper's rule (no improvement
//!   for half the elapsed search time, or an iteration cap).

#![warn(missing_docs)]

mod experts;
mod mcmc;
mod util;

pub use experts::{data_parallel, gnmt_expert, mesh_tf_expert, owt};
pub use mcmc::{mcmc_search, CostOracle, McmcOptions, McmcResult, TableOracle};
pub use util::pow2_at_most;
