//! Data parallelism and expert-designed strategies.

use crate::util::split_capped;
use pase_cost::{Config, Strategy};
use pase_graph::{DimRole, Graph, Node, OpKind};

/// Split the batch dimension of `node` into (up to) `p` parts, leaving
/// every other dimension whole. Layers without a batch dimension (or with a
/// batch smaller than `p`) replicate on the remaining devices — exactly the
/// behavior of a data-parallel framework.
fn dp_config(node: &Node, p: u32) -> Config {
    let mut splits = vec![1u32; node.rank()];
    if let Some(i) = node
        .iter_space
        .iter()
        .position(|d| d.role == DimRole::Batch)
    {
        if node.iter_space[i].splittable {
            splits[i] = split_capped(node.iter_space[i].size, p);
        }
    }
    Config::new(&splits)
}

/// Split the first `Param`-role dimension into (up to) `p` parts (classic
/// parameter parallelism for a fully-connected/softmax layer).
fn param_config(node: &Node, p: u32) -> Config {
    let mut splits = vec![1u32; node.rank()];
    if let Some(i) = node
        .iter_space
        .iter()
        .position(|d| d.role == DimRole::Param && d.splittable)
    {
        splits[i] = split_capped(node.iter_space[i].size, p);
    } else {
        return dp_config(node, p);
    }
    Config::new(&splits)
}

/// **Data parallelism**: every layer splits its batch dimension `p` ways.
pub fn data_parallel(graph: &Graph, p: u32) -> Strategy {
    Strategy::new(graph.nodes().iter().map(|n| dp_config(n, p)).collect())
}

/// **One weird trick** (Krizhevsky 2014, used for AlexNet and InceptionV3
/// in §IV): data parallelism for convolutional layers (and everything
/// feature-map shaped), switching to parameter parallelism for the
/// fully-connected and softmax layers. The paper notes OWT splits only the
/// out-channel dimension of FC layers, incurring the all-gather between
/// them that PaSE's alternating split avoids.
pub fn owt(graph: &Graph, p: u32) -> Strategy {
    Strategy::new(
        graph
            .nodes()
            .iter()
            .map(|n| match n.op {
                OpKind::FullyConnected | OpKind::Softmax | OpKind::Matmul => param_config(n, p),
                _ => dp_config(n, p),
            })
            .collect(),
    )
}

/// **GNMT-style data + pipeline parallelism** (Wu et al. 2016, the §IV
/// expert baseline for RNNLM): the recurrent stack's layers are placed on
/// different devices (splitting the `l` dimension of the single-vertex LSTM
/// operator) and each layer is replicated over the remaining devices for
/// data parallelism; the non-recurrent layers are data parallel.
pub fn gnmt_expert(graph: &Graph, p: u32) -> Strategy {
    Strategy::new(
        graph
            .nodes()
            .iter()
            .map(|n| match n.op {
                OpKind::Lstm { layers } => {
                    let mut splits = vec![1u32; n.rank()];
                    let l_split = split_capped(u64::from(layers), p);
                    if let Some(li) = n.dim_index("l") {
                        splits[li] = l_split;
                    }
                    if let Some(bi) = n.dim_index("b") {
                        splits[bi] = split_capped(n.iter_space[bi].size, p / l_split.max(1));
                    }
                    Config::new(&splits)
                }
                _ => dp_config(n, p),
            })
            .collect(),
    )
}

/// **Mesh-TensorFlow hybrid** (Shazeer et al. 2018, the §IV expert baseline
/// for Transformer): the batch dimension of every layer is split `m`-way
/// and the model dimensions — vocabulary, feed-forward hidden size,
/// attention heads — are split `n`-way, with `m·n = p`. We pick
/// `n = min(8, p/2)` (the per-node GPU count of the paper's testbed caps
/// the useful model-parallel group).
pub fn mesh_tf_expert(graph: &Graph, p: u32) -> Strategy {
    let n_model = if p >= 4 { (p / 2).min(8) } else { 1 };
    let m_batch = (p / n_model).max(1);
    Strategy::new(
        graph
            .nodes()
            .iter()
            .map(|node| {
                let mut splits = vec![1u32; node.rank()];
                if let Some(bi) = node.dim_index("b") {
                    splits[bi] = split_capped(node.iter_space[bi].size, m_batch);
                }
                // Model dimension by op kind, per the paper's description.
                let model_dim = match node.op {
                    OpKind::Embedding | OpKind::Softmax => node.dim_index("v"),
                    OpKind::Attention => node.dim_index("h"),
                    OpKind::FeedForward => node.dim_index("e"),
                    // The final projection shares the (v, d) layout.
                    OpKind::FullyConnected => node.dim_index("v"),
                    _ => None,
                };
                if let Some(mi) = model_dim {
                    if node.iter_space[mi].splittable {
                        splits[mi] = split_capped(node.iter_space[mi].size, n_model);
                    }
                }
                Config::new(&splits)
            })
            .collect(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use pase_graph::{GraphBuilder, IterDim, TensorRef};

    fn fc(name: &str, ins: usize) -> Node {
        let dims = vec![
            IterDim::new("b", 64, DimRole::Batch),
            IterDim::new("n", 128, DimRole::Param),
            IterDim::new("c", 128, DimRole::Reduction),
        ];
        Node {
            name: name.into(),
            op: OpKind::FullyConnected,
            iter_space: dims,
            inputs: (0..ins)
                .map(|_| TensorRef::new(vec![0, 2], vec![64, 128]))
                .collect(),
            output: TensorRef::new(vec![0, 1], vec![64, 128]),
            params: vec![TensorRef::new(vec![1, 2], vec![128, 128])],
        }
    }

    fn conv(name: &str, ins: usize) -> Node {
        let dims = vec![
            IterDim::new("b", 64, DimRole::Batch),
            IterDim::new("c", 16, DimRole::Reduction),
            IterDim::new("h", 32, DimRole::Spatial),
            IterDim::new("w", 32, DimRole::Spatial),
            IterDim::new("n", 32, DimRole::Param),
            IterDim::fixed("r", 3, DimRole::Reduction),
            IterDim::fixed("s", 3, DimRole::Reduction),
        ];
        Node {
            name: name.into(),
            op: OpKind::Conv2d {
                kernel_h: 3,
                kernel_w: 3,
                stride: 1,
            },
            iter_space: dims,
            inputs: (0..ins)
                .map(|_| TensorRef::new(vec![0, 1, 2, 3], vec![64, 16, 32, 32]))
                .collect(),
            output: TensorRef::new(vec![0, 4, 2, 3], vec![64, 32, 32, 32]),
            params: vec![TensorRef::new(vec![4, 1, 5, 6], vec![32, 16, 3, 3])],
        }
    }

    fn cnn() -> Graph {
        let mut b = GraphBuilder::new();
        let c1 = b.add_node(conv("conv1", 0));
        let f1 = b.add_node(fc("fc1", 1));
        b.connect(c1, f1);
        b.build().unwrap()
    }

    #[test]
    fn data_parallel_splits_batch_everywhere() {
        let g = cnn();
        let s = data_parallel(&g, 16);
        for (id, node) in g.iter() {
            let cfg = s.config(id);
            let bi = node.dim_index("b").unwrap();
            assert_eq!(cfg.split(bi), 16);
            assert_eq!(cfg.product(), 16);
        }
    }

    #[test]
    fn data_parallel_caps_at_batch_size() {
        let g = cnn();
        let s = data_parallel(&g, 128); // batch is only 64
        for (id, node) in g.iter() {
            assert_eq!(s.config(id).split(node.dim_index("b").unwrap()), 64);
        }
    }

    #[test]
    fn owt_switches_fc_to_parameter_parallelism() {
        let g = cnn();
        let s = owt(&g, 8);
        // conv: batch split
        assert_eq!(
            s.config(pase_graph::NodeId(0)).splits(),
            &[8, 1, 1, 1, 1, 1, 1]
        );
        // fc: out-feature split
        assert_eq!(s.config(pase_graph::NodeId(1)).splits(), &[1, 8, 1]);
    }

    #[test]
    fn gnmt_splits_lstm_layers_then_batch() {
        let lstm = Node {
            name: "lstm".into(),
            op: OpKind::Lstm { layers: 2 },
            iter_space: vec![
                IterDim::new("l", 2, DimRole::Pipeline),
                IterDim::new("b", 64, DimRole::Batch),
                IterDim::new("s", 40, DimRole::Pipeline),
                IterDim::new("d", 1024, DimRole::Reduction),
                IterDim::new("e", 2048, DimRole::Param),
            ],
            inputs: vec![],
            output: TensorRef::new(vec![1, 2, 4], vec![64, 40, 2048]),
            params: vec![TensorRef::new(vec![0, 3, 4], vec![2, 1024, 2048])],
        };
        let mut b = GraphBuilder::new();
        b.add_node(lstm);
        let g = b.build().unwrap();
        let s = gnmt_expert(&g, 8);
        // l split 2, batch split 8/2 = 4
        assert_eq!(s.config(pase_graph::NodeId(0)).splits(), &[2, 4, 1, 1, 1]);
    }

    #[test]
    fn mesh_tf_splits_batch_and_model_dims() {
        let ffn = Node {
            name: "ffn".into(),
            op: OpKind::FeedForward,
            iter_space: vec![
                IterDim::new("b", 64, DimRole::Batch),
                IterDim::new("s", 256, DimRole::Spatial),
                IterDim::new("d", 1024, DimRole::Param),
                IterDim::new("e", 4096, DimRole::Reduction),
            ],
            inputs: vec![],
            output: TensorRef::new(vec![0, 1, 2], vec![64, 256, 1024]),
            params: vec![TensorRef::new(vec![2, 3], vec![1024, 4096])],
        };
        let mut b = GraphBuilder::new();
        b.add_node(ffn);
        let g = b.build().unwrap();
        let s = mesh_tf_expert(&g, 32);
        // p = 32 → n = 8, m = 4: batch 4-way, hidden e 8-way
        assert_eq!(s.config(pase_graph::NodeId(0)).splits(), &[4, 1, 1, 8]);
    }

    #[test]
    fn experts_produce_valid_products() {
        let g = cnn();
        for p in [4u32, 8, 16, 32, 64] {
            for s in [data_parallel(&g, p), owt(&g, p)] {
                for (id, _) in g.iter() {
                    assert!(s.config(id).product() <= u64::from(p));
                }
            }
        }
    }
}
