//! GPipe-style pipeline timing of a [`PipelinePlan`].
//!
//! The step splits the mini-batch into `M` microbatches that flow through
//! the `S` stages; with per-stage microbatch time `t_i / M` the classic
//! fill/drain schedule costs `(M + S − 1)/M · max_i t_i`. Stage-boundary
//! activations move between device groups once per microbatch; all but the
//! pipeline-depth's worth overlap with compute, so the critical path pays
//! `(S − 1)/M` boundary transfers.

use crate::plan::PipelinePlan;
use pase_graph::Graph;
use pase_sim::{batch_size, simulate_step, SimOptions, Topology};

/// Timing of a pipelined step.
#[derive(Clone, Debug)]
pub struct PipelineReport {
    /// Full-batch time of each stage on its device group (seconds).
    pub stage_seconds: Vec<f64>,
    /// Total boundary-activation bytes per step (forward + backward).
    pub boundary_bytes: f64,
    /// Pipeline bubble factor `(M + S − 1)/M`.
    pub bubble_factor: f64,
    /// End-to-end step seconds.
    pub step_seconds: f64,
    /// Samples per second.
    pub throughput: f64,
}

/// Time one pipelined training step of `plan` for the original `graph` on
/// `p = S · devices_per_stage` devices of `machine`.
pub fn simulate_pipeline(
    graph: &Graph,
    plan: &PipelinePlan,
    topology_per_stage: &Topology,
    opts: &SimOptions,
) -> PipelineReport {
    let s = plan.stages();
    let m = f64::from(plan.microbatches.max(1));

    // Per-stage full-batch times on the stage's own device group.
    let stage_seconds: Vec<f64> = plan
        .stage_graphs
        .iter()
        .zip(&plan.stage_strategies)
        .map(|((sub, _), strategy)| {
            if sub.is_empty() {
                0.0
            } else {
                simulate_step(sub, strategy, topology_per_stage, opts).step_seconds
            }
        })
        .collect();

    // Boundary tensors: edges of the original graph crossing stages.
    let mut boundary_bytes = 0.0;
    for e in graph.edges() {
        if plan.stage_of[e.src.index()] != plan.stage_of[e.dst.index()] {
            boundary_bytes += 2.0 * graph.node(e.src).output.bytes();
        }
    }

    let bubble_factor = (m + s as f64 - 1.0) / m;
    let slowest = stage_seconds.iter().copied().fold(0.0, f64::max);
    // Boundary transfers ride the inter-node fabric between stage groups;
    // only the fill/drain fraction is exposed on the critical path.
    let boundary_exposed =
        boundary_bytes / topology_per_stage.bandwidth(false) * (s as f64 - 1.0).max(0.0) / m;
    let step_seconds = bubble_factor * slowest + boundary_exposed;
    let throughput = batch_size(graph) as f64 / step_seconds.max(f64::MIN_POSITIVE);

    PipelineReport {
        stage_seconds,
        boundary_bytes,
        bubble_factor,
        step_seconds,
        throughput,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::{plan_pipeline, PipelineOptions};
    use pase_cost::MachineSpec;
    use pase_models::{transformer, Benchmark, TransformerConfig};

    #[test]
    fn one_stage_pipeline_has_no_bubble_or_boundary() {
        let g = Benchmark::AlexNet.build();
        let machine = MachineSpec::gtx1080ti();
        let plan = plan_pipeline(
            &g,
            8,
            &machine,
            &PipelineOptions {
                stages: 1,
                microbatches: 4,
                ..Default::default()
            },
        )
        .unwrap();
        let topo = Topology::cluster(machine, 8).unwrap();
        let rep = simulate_pipeline(&g, &plan, &topo, &SimOptions::default());
        assert_eq!(rep.boundary_bytes, 0.0);
        assert_eq!(rep.bubble_factor, 1.0);
        assert_eq!(rep.stage_seconds.len(), 1);
        assert!((rep.step_seconds - rep.stage_seconds[0]).abs() <= 1e-12);
    }

    #[test]
    fn deeper_pipelines_shrink_stage_times_but_pay_bubbles() {
        let g = transformer(&TransformerConfig::paper());
        let machine = MachineSpec::gtx1080ti();
        let p = 16;
        let mk = |stages: usize| {
            let plan = plan_pipeline(
                &g,
                p,
                &machine,
                &PipelineOptions {
                    stages,
                    microbatches: 8,
                    ..Default::default()
                },
            )
            .unwrap();
            let topo = Topology::cluster(machine.clone(), p / stages as u32).unwrap();
            simulate_pipeline(&g, &plan, &topo, &SimOptions::default())
        };
        let two = mk(2);
        let four = mk(4);
        assert!(two.boundary_bytes > 0.0);
        assert!(four.bubble_factor > two.bubble_factor);
        // each stage of the 4-deep pipeline does less work than of the
        // 2-deep one (fewer layers), but on fewer devices; both must be
        // positive and finite.
        for rep in [&two, &four] {
            assert!(rep.step_seconds.is_finite() && rep.step_seconds > 0.0);
            assert!(rep.throughput > 0.0);
        }
    }

    #[test]
    fn more_microbatches_improve_efficiency() {
        let g = transformer(&TransformerConfig::paper());
        let machine = MachineSpec::gtx1080ti();
        let p = 8;
        let mk = |microbatches: u32| {
            let plan = plan_pipeline(
                &g,
                p,
                &machine,
                &PipelineOptions {
                    stages: 2,
                    microbatches,
                    ..Default::default()
                },
            )
            .unwrap();
            let topo = Topology::cluster(machine.clone(), p / 2).unwrap();
            simulate_pipeline(&g, &plan, &topo, &SimOptions::default())
        };
        assert!(mk(16).step_seconds < mk(2).step_seconds);
    }
}
