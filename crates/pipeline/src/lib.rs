//! # pase-pipeline — inter-batch pipeline composition (PaSE §VI)
//!
//! PaSE deliberately ignores inter-layer pipeline parallelism; the paper
//! proposes the composition instead: "the computation graph can be first
//! split into multiple stages using the formulation proposed in
//! PipeDream to achieve inter-batch pipeline parallelism, and the
//! subgraphs from each stage can be further parallelized with
//! data+parameter parallelism using our approach."
//!
//! This crate implements that composition:
//!
//! * [`partition_stages`] — a PipeDream-flavored *optimal contiguous
//!   partition* of the topological order into `S` stages minimizing the
//!   maximum per-stage compute (classic linear-partition dynamic program);
//! * [`plan_pipeline`] — per-stage subgraph extraction
//!   ([`pase_graph::induced_subgraph`]) and a PaSE FindBestStrategy run
//!   *inside* each stage with `p / S` devices;
//! * [`simulate_pipeline`] — GPipe-style timing: `M` microbatches flow
//!   through `S` stages, the step costs
//!   `(M + S − 1)/M · max_i t_i` plus the stage-boundary activation
//!   transfers, with `t_i` from the execution simulator.

#![warn(missing_docs)]

mod partition;
mod plan;
mod schedule;

pub use partition::partition_stages;
pub use plan::{plan_pipeline, PipelineOptions, PipelinePlan};
pub use schedule::{simulate_pipeline, PipelineReport};
