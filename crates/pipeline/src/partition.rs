//! Optimal contiguous stage partitioning.
//!
//! PipeDream's partitioner minimizes the slowest stage of a pipelined
//! execution; restricted to contiguous spans of a topological order this
//! is the classic *linear partition* problem, solved exactly by dynamic
//! programming in `O(n² S)` (our graphs have at most a few hundred nodes).

use pase_graph::{topo_order, Graph, NodeId};

/// Split `graph`'s topological order into `stages` contiguous spans
/// minimizing the maximum per-span sum of `weight` (per-node, indexed by
/// `NodeId::index`). Returns the stage index of every node.
///
/// Panics if the graph is cyclic or `stages` is 0 or exceeds the node
/// count.
pub fn partition_stages(graph: &Graph, weight: &[f64], stages: usize) -> Vec<usize> {
    assert!(stages >= 1, "need at least one stage");
    let order = topo_order(graph).expect("computation graphs are acyclic");
    let n = order.len();
    assert!(stages <= n.max(1), "more stages than nodes");
    assert_eq!(weight.len(), n, "one weight per node");
    if n == 0 {
        return Vec::new();
    }

    // prefix[i] = Σ weight of the first i nodes in topological order
    let mut prefix = vec![0.0; n + 1];
    for (i, &v) in order.iter().enumerate() {
        prefix[i + 1] = prefix[i] + weight[v.index()];
    }
    let span = |a: usize, b: usize| prefix[b] - prefix[a]; // [a, b)

    // dp[s][i] = minimal possible maximum span weight when the first i
    // nodes are divided into s spans.
    let inf = f64::INFINITY;
    let mut dp = vec![vec![inf; n + 1]; stages + 1];
    let mut cut = vec![vec![0usize; n + 1]; stages + 1];
    dp[0][0] = 0.0;
    for s in 1..=stages {
        for i in s..=n {
            for j in (s - 1)..i {
                let cand = dp[s - 1][j].max(span(j, i));
                if cand < dp[s][i] {
                    dp[s][i] = cand;
                    cut[s][i] = j;
                }
            }
        }
    }

    // Recover the cut points.
    let mut boundaries = vec![n];
    let mut i = n;
    for s in (1..=stages).rev() {
        i = cut[s][i];
        boundaries.push(i);
    }
    boundaries.reverse(); // [0, c1, c2, …, n]

    let mut stage_of = vec![0usize; n];
    for s in 0..stages {
        for pos in boundaries[s]..boundaries[s + 1] {
            stage_of[order[pos].index()] = s;
        }
    }
    stage_of
}

/// Nodes of each stage (by original id, ascending), given a `stage_of` map.
pub(crate) fn stage_members(stage_of: &[usize], stages: usize) -> Vec<Vec<NodeId>> {
    let mut members = vec![Vec::new(); stages];
    for (i, &s) in stage_of.iter().enumerate() {
        members[s].push(NodeId(i as u32));
    }
    members
}

#[cfg(test)]
mod tests {
    use super::*;
    use pase_graph::{DimRole, GraphBuilder, IterDim, Node, OpKind, TensorRef};

    fn chain(weights: &[f64]) -> (Graph, Vec<f64>) {
        let mut b = GraphBuilder::new();
        let mut prev = None;
        for (i, _) in weights.iter().enumerate() {
            let node = Node {
                name: format!("n{i}"),
                op: OpKind::Elementwise {
                    flops_per_point: 1.0,
                },
                iter_space: vec![IterDim::new("b", 4, DimRole::Batch)],
                inputs: if prev.is_some() {
                    vec![TensorRef::new(vec![0], vec![4])]
                } else {
                    vec![]
                },
                output: TensorRef::new(vec![0], vec![4]),
                params: vec![],
            };
            let id = b.add_node(node);
            if let Some(p) = prev {
                b.connect(p, id);
            }
            prev = Some(id);
        }
        (b.build().unwrap(), weights.to_vec())
    }

    fn max_stage_weight(stage_of: &[usize], w: &[f64], stages: usize) -> f64 {
        (0..stages)
            .map(|s| {
                stage_of
                    .iter()
                    .zip(w)
                    .filter(|(&st, _)| st == s)
                    .map(|(_, &x)| x)
                    .sum::<f64>()
            })
            .fold(0.0, f64::max)
    }

    #[test]
    fn balances_a_uniform_chain() {
        let (g, w) = chain(&[1.0; 8]);
        let stage_of = partition_stages(&g, &w, 4);
        assert_eq!(max_stage_weight(&stage_of, &w, 4), 2.0);
        // contiguity along the chain
        for win in stage_of.windows(2) {
            assert!(win[1] >= win[0]);
        }
    }

    #[test]
    fn isolates_a_heavy_node() {
        let (g, w) = chain(&[1.0, 1.0, 10.0, 1.0, 1.0]);
        let stage_of = partition_stages(&g, &w, 3);
        // the optimum puts the heavy node alone: max = 10
        assert_eq!(max_stage_weight(&stage_of, &w, 3), 10.0);
        let heavy_stage = stage_of[2];
        assert_eq!(
            w.iter()
                .zip(&stage_of)
                .filter(|(_, &s)| s == heavy_stage)
                .count(),
            1
        );
    }

    #[test]
    fn single_stage_is_everything() {
        let (g, w) = chain(&[3.0, 1.0, 2.0]);
        let stage_of = partition_stages(&g, &w, 1);
        assert!(stage_of.iter().all(|&s| s == 0));
    }

    #[test]
    fn stage_count_equal_to_nodes_is_one_each() {
        let (g, w) = chain(&[1.0, 2.0, 3.0]);
        let stage_of = partition_stages(&g, &w, 3);
        let mut sorted = stage_of.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, vec![0, 1, 2]);
    }

    #[test]
    #[should_panic(expected = "more stages than nodes")]
    fn too_many_stages_panics() {
        let (g, w) = chain(&[1.0, 1.0]);
        let _ = partition_stages(&g, &w, 3);
    }
}
