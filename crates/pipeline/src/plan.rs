//! Pipeline planning: stage partition + a PaSE search inside each stage.

use crate::partition::{partition_stages, stage_members};
use pase_core::{Search, SearchBudget};
use pase_cost::{ConfigRule, MachineSpec, Strategy};
use pase_graph::{induced_subgraph, Graph, NodeId};

/// Options for [`plan_pipeline`].
#[derive(Clone, Copy, Debug)]
pub struct PipelineOptions {
    /// Number of pipeline stages `S` (must divide the device count).
    pub stages: usize,
    /// Microbatches per step `M` (GPipe chunking; efficiency is
    /// `M / (M + S − 1)`).
    pub microbatches: u32,
    /// Budget for each per-stage search.
    pub budget: SearchBudget,
}

impl Default for PipelineOptions {
    fn default() -> Self {
        Self {
            stages: 2,
            microbatches: 8,
            budget: SearchBudget::default(),
        }
    }
}

/// A planned pipeline: the stage assignment plus a PaSE strategy for each
/// stage's subgraph on its `p / S` devices.
#[derive(Clone, Debug)]
pub struct PipelinePlan {
    /// Stage index per original node.
    pub stage_of: Vec<usize>,
    /// Per stage: the induced subgraph and its node-id mapping back to the
    /// original graph.
    pub stage_graphs: Vec<(Graph, Vec<NodeId>)>,
    /// Per stage: the within-stage strategy (over the *subgraph's* node
    /// ids).
    pub stage_strategies: Vec<Strategy>,
    /// Devices assigned to each stage.
    pub devices_per_stage: u32,
    /// Microbatches per step.
    pub microbatches: u32,
    /// Sum of the per-stage search costs (FLOP units; diagnostic only —
    /// pipeline timing comes from the simulator).
    pub total_search_cost: f64,
}

impl PipelinePlan {
    /// Number of stages.
    pub fn stages(&self) -> usize {
        self.stage_graphs.len()
    }

    /// The within-stage configuration of an original node.
    pub fn config_of(&self, v: NodeId) -> &pase_cost::Config {
        let s = self.stage_of[v.index()];
        let (_, mapping) = &self.stage_graphs[s];
        let local = mapping
            .iter()
            .position(|&w| w == v)
            .expect("node in its stage");
        self.stage_strategies[s].config(NodeId(local as u32))
    }
}

/// Partition `graph` into `opts.stages` stages (balancing per-stage
/// compute), then run PaSE's FindBestStrategy inside each stage with
/// `p / stages` devices.
pub fn plan_pipeline(
    graph: &Graph,
    p: u32,
    machine: &MachineSpec,
    opts: &PipelineOptions,
) -> Result<PipelinePlan, String> {
    if opts.stages == 0 || !(p as usize).is_multiple_of(opts.stages) {
        return Err(format!("{} stages must divide p = {p}", opts.stages));
    }
    if opts.stages > graph.len() {
        return Err(format!(
            "{} stages exceed the {}-node graph",
            opts.stages,
            graph.len()
        ));
    }
    let devices_per_stage = p / opts.stages as u32;

    let weights: Vec<f64> = graph.nodes().iter().map(|n| n.step_flops()).collect();
    let stage_of = partition_stages(graph, &weights, opts.stages);
    let members = stage_members(&stage_of, opts.stages);

    let mut stage_graphs = Vec::with_capacity(opts.stages);
    let mut stage_strategies = Vec::with_capacity(opts.stages);
    let mut total_search_cost = 0.0;
    for nodes in &members {
        let (sub, mapping) = induced_subgraph(graph, nodes);
        let run = Search::new(&sub)
            .rule(ConfigRule::new(devices_per_stage))
            .machine(machine.clone())
            .budget(opts.budget)
            .run();
        let result = run
            .outcome()
            .found()
            .ok_or_else(|| format!("stage search failed: {}", run.outcome().tag()))?;
        total_search_cost += result.cost;
        stage_strategies.push(run.tables().ids_to_strategy(&result.config_ids));
        stage_graphs.push((sub, mapping));
    }

    Ok(PipelinePlan {
        stage_of,
        stage_graphs,
        stage_strategies,
        devices_per_stage,
        microbatches: opts.microbatches,
        total_search_cost,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use pase_models::{transformer, Benchmark, TransformerConfig};

    #[test]
    fn one_stage_plan_equals_plain_search() {
        let g = Benchmark::AlexNet.build();
        let machine = MachineSpec::gtx1080ti();
        let plan = plan_pipeline(
            &g,
            8,
            &machine,
            &PipelineOptions {
                stages: 1,
                ..Default::default()
            },
        )
        .unwrap();
        assert_eq!(plan.stages(), 1);
        assert_eq!(plan.devices_per_stage, 8);
        let plain = Search::new(&g)
            .devices(8)
            .machine(machine.clone())
            .run()
            .expect_found("plain");
        assert!((plan.total_search_cost - plain.cost).abs() <= 1e-9 * plain.cost);
    }

    #[test]
    fn plan_covers_every_node_exactly_once() {
        let g = transformer(&TransformerConfig::tiny());
        let machine = MachineSpec::gtx1080ti();
        let plan = plan_pipeline(
            &g,
            8,
            &machine,
            &PipelineOptions {
                stages: 4,
                ..Default::default()
            },
        )
        .unwrap();
        assert_eq!(plan.stage_of.len(), g.len());
        let covered: usize = plan.stage_graphs.iter().map(|(sub, _)| sub.len()).sum();
        assert_eq!(covered, g.len());
        // config_of resolves for every node with the right rank
        for (id, node) in g.iter() {
            assert_eq!(plan.config_of(id).rank(), node.rank());
            assert!(plan.config_of(id).product() <= u64::from(plan.devices_per_stage));
        }
    }

    #[test]
    fn invalid_stage_counts_are_rejected() {
        let g = Benchmark::AlexNet.build();
        let machine = MachineSpec::gtx1080ti();
        assert!(plan_pipeline(
            &g,
            8,
            &machine,
            &PipelineOptions {
                stages: 3,
                ..Default::default()
            }
        )
        .is_err());
        assert!(plan_pipeline(
            &g,
            8,
            &machine,
            &PipelineOptions {
                stages: 0,
                ..Default::default()
            }
        )
        .is_err());
        assert!(plan_pipeline(
            &g,
            32,
            &machine,
            &PipelineOptions {
                stages: 16,
                ..Default::default()
            }
        )
        .is_err());
    }

    #[test]
    fn stages_are_contiguous_in_topological_order() {
        let g = Benchmark::InceptionV3.build();
        let machine = MachineSpec::gtx1080ti();
        let plan = plan_pipeline(
            &g,
            8,
            &machine,
            &PipelineOptions {
                stages: 4,
                ..Default::default()
            },
        )
        .unwrap();
        let order = pase_graph::topo_order(&g).unwrap();
        let stages_along: Vec<usize> = order.iter().map(|&v| plan.stage_of[v.index()]).collect();
        for w in stages_along.windows(2) {
            assert!(
                w[1] >= w[0],
                "stage order must be monotone along topo order"
            );
        }
    }
}
