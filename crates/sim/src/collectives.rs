//! α–β timing of collective operations.
//!
//! Each collective over a group of `g` devices is timed with the classic
//! latency–bandwidth model: ring algorithms take `g − 1` (all-gather /
//! reduce-scatter) or `2(g − 1)` (all-reduce) steps of `volume/g` bytes
//! each, plus per-step latency `α`.

/// Time (seconds) of a ring all-reduce of `volume` bytes across `group`
/// devices over links with `bandwidth` bytes/s and `alpha` seconds latency.
pub fn all_reduce_time(volume: f64, group: u32, bandwidth: f64, alpha: f64) -> f64 {
    if group <= 1 {
        return 0.0;
    }
    let g = f64::from(group);
    2.0 * (g - 1.0) / g * volume / bandwidth + 2.0 * (g - 1.0) * alpha
}

/// Time of a ring all-gather producing `volume` total bytes.
pub fn all_gather_time(volume: f64, group: u32, bandwidth: f64, alpha: f64) -> f64 {
    if group <= 1 {
        return 0.0;
    }
    let g = f64::from(group);
    (g - 1.0) / g * volume / bandwidth + (g - 1.0) * alpha
}

/// Time of an all-to-all personalized exchange: each of `group` devices
/// scatters `volume` bytes (its full buffer) in `group − 1` messages of
/// `volume/group` each. Used when a resharding touches every pair of
/// devices (e.g. a batch-split → vocabulary-split boundary).
pub fn all_to_all_time(volume: f64, group: u32, bandwidth: f64, alpha: f64) -> f64 {
    if group <= 1 {
        return 0.0;
    }
    let g = f64::from(group);
    (g - 1.0) / g * volume / bandwidth + (g - 1.0) * alpha
}

/// Time of a neighbor point-to-point exchange of `volume` bytes.
pub fn p2p_time(volume: f64, bandwidth: f64, alpha: f64) -> f64 {
    if volume <= 0.0 {
        return 0.0;
    }
    volume / bandwidth + alpha
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn singleton_groups_are_free() {
        assert_eq!(all_reduce_time(1e9, 1, 1e9, 1e-6), 0.0);
        assert_eq!(all_gather_time(1e9, 1, 1e9, 1e-6), 0.0);
    }

    #[test]
    fn all_reduce_approaches_two_transfers() {
        // Large groups: ~2 · volume / bandwidth.
        let t = all_reduce_time(1e9, 64, 1e9, 0.0);
        assert!((t - 2.0 * 63.0 / 64.0).abs() < 1e-12);
    }

    #[test]
    fn latency_dominates_tiny_messages() {
        let big_alpha = all_reduce_time(8.0, 8, 1e12, 1e-5);
        assert!(big_alpha > 1e-4); // 14 steps × 10 µs
    }

    #[test]
    fn all_to_all_matches_all_gather_volume_shape() {
        // same per-device traffic shape as an all-gather of the buffer
        assert_eq!(
            all_to_all_time(1e6, 8, 1e9, 0.0),
            all_gather_time(1e6, 8, 1e9, 0.0)
        );
        assert_eq!(all_to_all_time(1e6, 1, 1e9, 1e-6), 0.0);
        assert!(all_to_all_time(8.0, 16, 1e12, 1e-5) > 1e-4); // latency bound
    }

    #[test]
    fn p2p_is_linear_in_volume() {
        assert_eq!(p2p_time(1e6, 1e9, 0.0), 1e-3);
        assert_eq!(p2p_time(0.0, 1e9, 1e-6), 0.0);
    }

    #[test]
    fn slower_links_cost_more() {
        let fast = all_reduce_time(1e8, 8, 12e9, 5e-6);
        let slow = all_reduce_time(1e8, 8, 5e9, 5e-6);
        assert!(slow > fast);
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            /// Times are nonnegative, monotone in volume, and an all-reduce
            /// always costs at least an all-gather of the same buffer.
            #[test]
            fn collective_time_invariants(
                vol in 1.0f64..1e10,
                group in 2u32..128,
                bw in 1e8f64..1e11,
                alpha in 0.0f64..1e-4,
            ) {
                let ar = all_reduce_time(vol, group, bw, alpha);
                let ag = all_gather_time(vol, group, bw, alpha);
                prop_assert!(ar >= 0.0 && ag >= 0.0);
                prop_assert!(ar >= ag);
                prop_assert!(all_reduce_time(2.0 * vol, group, bw, alpha) > ar);
                // latency-free time is bounded by two full transfers
                prop_assert!(all_reduce_time(vol, group, bw, 0.0) <= 2.0 * vol / bw);
            }

            /// p2p time is exactly linear.
            #[test]
            fn p2p_linearity(vol in 1.0f64..1e9, bw in 1e8f64..1e11) {
                let one = p2p_time(vol, bw, 0.0);
                let two = p2p_time(2.0 * vol, bw, 0.0);
                prop_assert!((two - 2.0 * one).abs() <= 1e-12 * two.abs());
            }
        }
    }
}
