//! Per-step simulation of a complete strategy.

use crate::collectives::{all_gather_time, all_reduce_time, p2p_time};
use crate::placement::{Placement, PlacementPolicy};
use crate::topology::Topology;
use pase_cost::{
    layer_comm_events, layer_compute_flops, transfer_bytes, Collective, CommKind, Strategy,
};
use pase_graph::{DimRole, Graph};

/// Simulation knobs.
#[derive(Clone, Copy, Debug)]
pub struct SimOptions {
    /// Fraction of total compute time that communication can hide behind
    /// (Mesh-TensorFlow overlaps inter-layer transfers with compute; the
    /// paper's §IV-B explicitly allows the framework such optimizations
    /// even though the cost model ignores them).
    pub overlap: f64,
    /// How per-node split dimensions map onto the device grid (the §II
    /// greedy locality assignment vs the canonical batch-major mesh).
    pub placement: PlacementPolicy,
}

impl Default for SimOptions {
    fn default() -> Self {
        Self {
            overlap: 0.3,
            placement: PlacementPolicy::Canonical,
        }
    }
}

/// Timing breakdown of one simulated training step.
#[derive(Clone, Debug)]
pub struct StepReport {
    /// Per-device compute time on the critical path (seconds).
    pub compute_seconds: f64,
    /// Intra-layer collective time (partial reductions, halos, …).
    pub intra_layer_seconds: f64,
    /// Inter-layer resharding transfer time.
    pub transfer_seconds: f64,
    /// Update-phase gradient synchronization time.
    pub gradient_sync_seconds: f64,
    /// Total step time after compute/communication overlap.
    pub step_seconds: f64,
    /// Training throughput in samples/second.
    pub throughput: f64,
}

impl StepReport {
    /// Total communication time before overlap.
    pub fn comm_seconds(&self) -> f64 {
        self.intra_layer_seconds + self.transfer_seconds + self.gradient_sync_seconds
    }
}

/// The mini-batch size of the model: the batch-dimension extent of the
/// first node that has one.
pub fn batch_size(graph: &Graph) -> u64 {
    graph
        .nodes()
        .iter()
        .find_map(|n| {
            n.iter_space
                .iter()
                .find(|d| d.role == DimRole::Batch)
                .map(|d| d.size)
        })
        .unwrap_or(1)
}

/// Per-layer timing row of a [`simulate_step_trace`].
#[derive(Clone, Debug)]
pub struct LayerTiming {
    /// The layer.
    pub node: pase_graph::NodeId,
    /// Per-device compute seconds.
    pub compute: f64,
    /// Intra-layer collective seconds (partial reductions, halos, …).
    pub intra_layer: f64,
    /// Update-phase gradient-sync seconds.
    pub gradient_sync: f64,
}

/// Simulate one training step of `strategy` on `topology`.
pub fn simulate_step(
    graph: &Graph,
    strategy: &Strategy,
    topology: &Topology,
    opts: &SimOptions,
) -> StepReport {
    simulate_step_trace(graph, strategy, topology, opts).0
}

/// [`simulate_step`] plus the per-layer breakdown (used by diagnostics and
/// the CLI's trace output). The row sums equal the report's aggregates
/// exactly.
pub fn simulate_step_trace(
    graph: &Graph,
    strategy: &Strategy,
    topology: &Topology,
    opts: &SimOptions,
) -> (StepReport, Vec<LayerTiming>) {
    assert_eq!(
        strategy.len(),
        graph.len(),
        "strategy must cover every node"
    );
    let p = topology.devices();
    let peak = topology.machine().peak_flops;

    let mut compute = 0.0;
    let mut intra_layer = 0.0;
    let mut grad_sync = 0.0;
    let mut rows = Vec::with_capacity(graph.len());

    for (id, node) in graph.iter() {
        let cfg = strategy.config(id);
        let mut row = LayerTiming {
            node: id,
            compute: layer_compute_flops(node, cfg) / peak,
            intra_layer: 0.0,
            gradient_sync: 0.0,
        };
        compute += row.compute;
        let events = layer_comm_events(node, cfg);
        // Per-dimension communication weights drive the comm-aware digit
        // assignment.
        let mut comm_weight = vec![0.0f64; node.rank()];
        for event in &events {
            for &d in &event.group_dims {
                comm_weight[d as usize] += event.volume;
            }
        }
        let placement = Placement::for_config_with_policy(cfg, p, opts.placement, &comm_weight);
        for event in events {
            // Locate the group on the device grid, then classify its links.
            let mut block = placement.group_block(&event.group_dims);
            if event.kind == CommKind::GradientSync {
                // Replicas over leftover devices also need their gradients
                // synchronized; fold them into the sync group's block.
                block = block.max(placement.replica_block());
            }
            let intra = topology.block_is_intra(block);
            let bw = topology.bandwidth(intra);
            let alpha = topology.alpha(intra);
            let group = if event.kind == CommKind::GradientSync {
                event.group * placement.replicas().max(1) as u32
            } else {
                event.group
            };
            let t = match event.collective {
                Collective::AllReduce => all_reduce_time(event.volume, group, bw, alpha),
                Collective::AllGather => all_gather_time(event.volume, group, bw, alpha),
                Collective::PointToPoint => p2p_time(event.volume, bw, alpha),
            };
            if event.kind == CommKind::GradientSync {
                grad_sync += t;
                row.gradient_sync += t;
            } else {
                intra_layer += t;
                row.intra_layer += t;
            }
        }
        // Unsplit replicated parametric layers still sync their gradients
        // across the replica group even when no event fired (the layer had
        // no split at all but p devices hold copies).
        if node.op.has_params() && placement.replicas() > 1 {
            let already = layer_comm_events(node, cfg)
                .iter()
                .any(|e| e.kind == CommKind::GradientSync);
            if !already {
                let vol: f64 = node
                    .params
                    .iter()
                    .map(|t| pase_cost::shard_bytes(t, cfg))
                    .sum();
                let g = placement.replicas() as u32;
                let intra = topology.block_is_intra(placement.replica_block());
                let t = all_reduce_time(vol, g, topology.bandwidth(intra), topology.alpha(intra));
                grad_sync += t;
                row.gradient_sync += t;
            }
        }
        rows.push(row);
    }

    // Inter-layer resharding transfers. Traffic that crosses shard
    // boundaries is split between intra- and inter-node links in proportion
    // to the machine's layout (a uniform reshard keeps ~per_node/p of its
    // traffic inside a node).
    let mut transfer = 0.0;
    let intra_frac = f64::from(topology.devices_per_node()) / f64::from(p.max(1));
    for e in graph.edges() {
        let bytes = transfer_bytes(
            graph.node(e.src),
            strategy.config(e.src),
            graph.node(e.dst),
            e.dst_slot as usize,
            strategy.config(e.dst),
        );
        if bytes <= 0.0 {
            continue;
        }
        if p <= topology.devices_per_node() {
            transfer += p2p_time(bytes, topology.bandwidth(true), topology.alpha(true));
        } else {
            transfer += p2p_time(bytes * intra_frac, topology.bandwidth(true), 0.0)
                + p2p_time(
                    bytes * (1.0 - intra_frac),
                    topology.bandwidth(false),
                    topology.alpha(false),
                );
        }
    }

    let comm = intra_layer + transfer + grad_sync;
    let hidden = (opts.overlap * compute).min(comm);
    let step_seconds = compute + comm - hidden;
    let throughput = batch_size(graph) as f64 / step_seconds;

    (
        StepReport {
            compute_seconds: compute,
            intra_layer_seconds: intra_layer,
            transfer_seconds: transfer,
            gradient_sync_seconds: grad_sync,
            step_seconds,
            throughput,
        },
        rows,
    )
}

/// Throughput ratio of `strategy` over `baseline` (Fig. 6's y-axis).
pub fn speedup_over(
    graph: &Graph,
    strategy: &Strategy,
    baseline: &Strategy,
    topology: &Topology,
    opts: &SimOptions,
) -> f64 {
    let s = simulate_step(graph, strategy, topology, opts);
    let b = simulate_step(graph, baseline, topology, opts);
    s.throughput / b.throughput
}

#[cfg(test)]
mod tests {
    use super::*;
    use pase_baselines::{data_parallel, owt};
    use pase_cost::{Config, MachineSpec};
    use pase_models::{alexnet, mlp, AlexNetConfig, MlpConfig};

    fn topo(p: u32) -> Topology {
        Topology::cluster(MachineSpec::gtx1080ti(), p).unwrap()
    }

    #[test]
    fn sequential_strategy_is_pure_compute_plus_replica_sync() {
        let g = mlp(&MlpConfig::default());
        let seq = Strategy::sequential(&g);
        let t = Topology::cluster(MachineSpec::gtx1080ti(), 1).unwrap();
        let rep = simulate_step(&g, &seq, &t, &SimOptions::default());
        assert!(
            rep.comm_seconds() == 0.0,
            "single device must not communicate"
        );
        assert!(rep.compute_seconds > 0.0);
        assert_eq!(rep.step_seconds, rep.compute_seconds);
    }

    #[test]
    fn data_parallel_scales_compute_but_adds_sync() {
        // A compute-heavy shape (fat batch, modest weights) where data
        // parallelism genuinely pays off.
        let g = mlp(&MlpConfig {
            batch: 16384,
            input: 1024,
            hidden: vec![512],
            classes: 1024,
        });
        let t1 = topo(1);
        let t8 = topo(8);
        let seq = Strategy::sequential(&g);
        let dp = data_parallel(&g, 8);
        let r1 = simulate_step(&g, &seq, &t1, &SimOptions::default());
        let r8 = simulate_step(&g, &dp, &t8, &SimOptions::default());
        assert!(r8.compute_seconds < r1.compute_seconds / 7.0);
        assert!(r8.gradient_sync_seconds > 0.0);
        assert!(r8.throughput > r1.throughput);
    }

    #[test]
    fn data_parallel_sync_dominates_for_small_batch_large_model() {
        // ... and the opposite shape, where the paper's motivation holds:
        // gradient sync makes 8-way data parallelism *slower* than one
        // device.
        let g = mlp(&MlpConfig::default()); // batch 64, 4096-wide layers
        let r1 = simulate_step(
            &g,
            &Strategy::sequential(&g),
            &topo(1),
            &SimOptions::default(),
        );
        let r8 = simulate_step(&g, &data_parallel(&g, 8), &topo(8), &SimOptions::default());
        assert!(r8.gradient_sync_seconds > r8.compute_seconds);
        assert!(r8.throughput < r1.throughput);
    }

    #[test]
    fn owt_beats_data_parallelism_on_alexnet() {
        // The paper's core observation: AlexNet's giant FC layers make the
        // data-parallel gradient sync dominate; OWT avoids it.
        let g = alexnet(&AlexNetConfig::paper());
        let t = topo(32);
        let dp = data_parallel(&g, 32);
        let expert = owt(&g, 32);
        let s = speedup_over(&g, &expert, &dp, &t, &SimOptions::default());
        assert!(s > 1.0, "OWT speedup over DP = {s:.3}");
    }

    #[test]
    fn low_machine_balance_amplifies_strategy_gaps() {
        // §IV-B: inefficiencies are much more pronounced on 2080Ti nodes.
        let g = alexnet(&AlexNetConfig::paper());
        let dp = data_parallel(&g, 32);
        let expert = owt(&g, 32);
        let opts = SimOptions::default();
        let s_1080 = speedup_over(
            &g,
            &expert,
            &dp,
            &Topology::cluster(MachineSpec::gtx1080ti(), 32).unwrap(),
            &opts,
        );
        let s_2080 = speedup_over(
            &g,
            &expert,
            &dp,
            &Topology::cluster(MachineSpec::rtx2080ti(), 32).unwrap(),
            &opts,
        );
        assert!(
            s_2080 > s_1080,
            "2080Ti speedup {s_2080:.3} should exceed 1080Ti speedup {s_1080:.3}"
        );
    }

    #[test]
    fn overlap_reduces_step_time() {
        let g = alexnet(&AlexNetConfig::paper());
        let t = topo(32);
        let dp = data_parallel(&g, 32);
        let none = simulate_step(
            &g,
            &dp,
            &t,
            &SimOptions {
                overlap: 0.0,
                ..SimOptions::default()
            },
        );
        let some = simulate_step(
            &g,
            &dp,
            &t,
            &SimOptions {
                overlap: 0.5,
                ..SimOptions::default()
            },
        );
        assert!(some.step_seconds < none.step_seconds);
        assert_eq!(none.comm_seconds(), some.comm_seconds());
    }

    #[test]
    fn trace_rows_sum_to_the_report() {
        let g = alexnet(&AlexNetConfig::paper());
        let t = topo(32);
        let dp = data_parallel(&g, 32);
        let (rep, rows) = simulate_step_trace(&g, &dp, &t, &SimOptions::default());
        assert_eq!(rows.len(), g.len());
        let compute: f64 = rows.iter().map(|r| r.compute).sum();
        let intra: f64 = rows.iter().map(|r| r.intra_layer).sum();
        let sync: f64 = rows.iter().map(|r| r.gradient_sync).sum();
        assert!((compute - rep.compute_seconds).abs() <= 1e-12 * rep.compute_seconds);
        assert!((intra - rep.intra_layer_seconds).abs() <= 1e-12 * intra.abs().max(1e-30));
        assert!((sync - rep.gradient_sync_seconds).abs() <= 1e-12 * sync.abs().max(1e-30));
        // the big FC layers dominate the sync column under DP
        let fc1 = g
            .iter()
            .find(|(_, n)| n.name == "fc1")
            .map(|(id, _)| id)
            .unwrap();
        let fc_row = rows.iter().find(|r| r.node == fc1).unwrap();
        assert!(fc_row.gradient_sync > rep.gradient_sync_seconds * 0.4);
    }

    #[test]
    fn batch_size_detection() {
        let g = alexnet(&AlexNetConfig::paper());
        assert_eq!(batch_size(&g), 128);
    }

    #[test]
    fn comm_aware_placement_helps_reduction_heavy_strategies() {
        use crate::placement::PlacementPolicy;
        use pase_cost::Config;
        // A GEMM whose *batch* split carries the gradient-sync traffic:
        // canonical placement puts batch outermost (inter-node), comm-aware
        // pulls it innermost.
        let g = mlp(&MlpConfig {
            batch: 64,
            input: 4096,
            hidden: vec![4096],
            classes: 4096,
        });
        let t = topo(32);
        // batch 4-way × out-features 8-way on every fc; softmax batch-split
        let mut cfgs = vec![Config::new(&[4, 8, 1]); 2];
        cfgs.push(Config::new(&[4, 8]));
        let s = Strategy::new(cfgs);
        let canonical = simulate_step(&g, &s, &t, &SimOptions::default());
        let aware = simulate_step(
            &g,
            &s,
            &t,
            &SimOptions {
                placement: PlacementPolicy::CommAware,
                ..SimOptions::default()
            },
        );
        assert!(
            aware.gradient_sync_seconds <= canonical.gradient_sync_seconds,
            "comm-aware {} vs canonical {}",
            aware.gradient_sync_seconds,
            canonical.gradient_sync_seconds
        );
    }

    #[test]
    fn misaligned_strategies_pay_transfer_time() {
        let g = mlp(&MlpConfig::default());
        let t = topo(8);
        // fc0 batch-split, fc1 reduction-split → resharding edge
        let mut configs = vec![Config::new(&[8, 1, 1]); 3];
        configs[1] = Config::new(&[1, 1, 8]);
        configs.push(Config::new(&[8, 1])); // softmax (b, n)
        let s = Strategy::new(configs);
        let rep = simulate_step(&g, &s, &t, &SimOptions::default());
        assert!(rep.transfer_seconds > 0.0);
    }
}
