//! # pase-sim — cluster execution simulator (the §IV testbed substitute)
//!
//! The paper evaluates strategies by running them in Mesh-TensorFlow on
//! multi-node clusters of 1080Ti / 2080Ti GPUs. Without that hardware, this
//! crate simulates a training step on a **hierarchical topology** (nodes ×
//! devices, fast intra-node links, slower inter-node links):
//!
//! * [`Topology`] — cluster shape + a [`pase_cost::MachineSpec`] profile;
//! * [`Placement`] — the canonical aligned device assignment implied by a
//!   configuration (batch-major mixed radix, replicas innermost), giving
//!   each communication group a stride/extent from which its link class
//!   (intra- vs inter-node) follows;
//! * [`collectives`] — α–β timing of ring all-reduce / all-gather and
//!   point-to-point exchanges;
//! * [`simulate_step`] — per-step timing of a complete strategy: per-layer
//!   compute, intra-layer collectives (from
//!   [`pase_cost::layer_comm_events`]), inter-layer resharding transfers,
//!   and the update-phase gradient synchronization, with partial
//!   compute/communication overlap;
//! * [`memory_per_device`] — per-device footprint (weights + activations +
//!   communication buffers), reproducing the paper's memory argument
//!   against pure data parallelism.
//!
//! The simulator is deliberately *richer* than the analytical cost model
//! (hierarchical bandwidths, latency terms, overlap) so that Fig. 6's
//! throughput comparisons are made against an independent ground truth
//! rather than against the objective the DP optimized.

#![warn(missing_docs)]

pub mod collectives;
mod memory;
mod placement;
mod step;
mod topology;

pub use memory::memory_per_device;
pub use placement::{Placement, PlacementPolicy};
pub use step::{
    batch_size, simulate_step, simulate_step_trace, speedup_over, LayerTiming, SimOptions,
    StepReport,
};
pub use topology::Topology;
