//! Per-device memory footprint.
//!
//! PaSE §II argues that minimizing communication also indirectly minimizes
//! memory: the per-device footprint is (i) the sharded tensors (weights +
//! activations, shrinking with the split) plus (ii) communication buffers
//! (proportional to the communication the objective minimizes). This module
//! reproduces that accounting, and with it the paper's motivation claim
//! that data parallelism "suffers from … high memory requirement" because
//! it replicates every parameter.

use crate::placement::Placement;
use crate::topology::Topology;
use pase_cost::{layer_comm_events, shard_bytes, Strategy};
use pase_graph::Graph;

/// Estimated peak bytes per device under `strategy`: parameter shards
/// (plus gradient + optimizer state, 3× the weight bytes), activation
/// shards of every layer output (live for the backward pass), and the
/// largest communication buffer.
pub fn memory_per_device(graph: &Graph, strategy: &Strategy, topology: &Topology) -> f64 {
    let p = topology.devices();
    let mut total = 0.0;
    let mut max_buffer = 0.0f64;
    for (id, node) in graph.iter() {
        let cfg = strategy.config(id);
        let _placement = Placement::for_config(cfg, p);
        // weights + gradients + momentum: 3× the parameter shard
        let weight_shard: f64 = node.params.iter().map(|t| shard_bytes(t, cfg)).sum();
        total += 3.0 * weight_shard;
        // activations (outputs kept for backprop)
        total += shard_bytes(&node.output, cfg);
        for e in layer_comm_events(node, cfg) {
            max_buffer = max_buffer.max(e.volume);
        }
    }
    total + max_buffer
}

#[cfg(test)]
mod tests {
    use super::*;
    use pase_baselines::{data_parallel, owt};
    use pase_cost::MachineSpec;
    use pase_models::{alexnet, AlexNetConfig};

    #[test]
    fn data_parallelism_replicates_parameters() {
        // DP memory barely shrinks with p (weights replicated); OWT shards
        // the big FC weights, so its footprint is much smaller.
        let g = alexnet(&AlexNetConfig::paper());
        let t = Topology::cluster(MachineSpec::gtx1080ti(), 32).unwrap();
        let dp_mem = memory_per_device(&g, &data_parallel(&g, 32), &t);
        let owt_mem = memory_per_device(&g, &owt(&g, 32), &t);
        assert!(
            dp_mem > 1.5 * owt_mem,
            "dp = {:.1} MiB vs owt = {:.1} MiB",
            dp_mem / (1 << 20) as f64,
            owt_mem / (1 << 20) as f64
        );
    }

    #[test]
    fn splitting_reduces_footprint() {
        let g = alexnet(&AlexNetConfig::paper());
        let t8 = Topology::cluster(MachineSpec::gtx1080ti(), 8).unwrap();
        let t32 = Topology::cluster(MachineSpec::gtx1080ti(), 32).unwrap();
        let m8 = memory_per_device(&g, &owt(&g, 8), &t8);
        let m32 = memory_per_device(&g, &owt(&g, 32), &t32);
        assert!(m32 < m8);
    }
}
