//! Cluster topology.

use pase_cost::{DeviceMesh, MachineSpec};
use pase_graph::GraphError;

/// A hierarchical cluster: `nodes × devices_per_node` devices, fast
/// intra-node links (PCIe in the paper's testbeds) and slower inter-node
/// links (InfiniBand). Internally the shape is a two-axis
/// [`DeviceMesh`] — the `gpu` axis on the intra-node bus, the `node` axis
/// on the inter-node fabric — and every link rate the simulator consumes
/// is read off those axes.
#[derive(Clone, Debug)]
pub struct Topology {
    machine: MachineSpec,
    mesh: DeviceMesh,
    nodes: u32,
    devices_per_node: u32,
}

impl Topology {
    /// Build a topology with explicit shape. A degenerate shape (zero
    /// nodes or zero devices per node) is a [`GraphError::InvalidShape`],
    /// not a panic, so hostile wire/CLI inputs surface as protocol errors.
    pub fn new(
        machine: MachineSpec,
        nodes: u32,
        devices_per_node: u32,
    ) -> Result<Self, GraphError> {
        if nodes == 0 || devices_per_node == 0 {
            return Err(GraphError::InvalidShape(format!(
                "topology needs at least one node and one device per node, \
                 got {nodes} node(s) x {devices_per_node} device(s)"
            )));
        }
        let mesh = DeviceMesh::cluster(&machine, nodes, devices_per_node);
        Ok(Self {
            machine,
            mesh,
            nodes,
            devices_per_node,
        })
    }

    /// The paper's testbed shape for `p` GPUs: up to 8 GPUs per node,
    /// spread across `p / per_node` nodes (§IV-B: 4 GPUs on a single node
    /// up to 64 across 8 nodes). `per_node` is the largest divisor of `p`
    /// not exceeding 8, so `devices()` always equals `p` exactly.
    /// `p = 0` is a [`GraphError::InvalidShape`].
    pub fn cluster(machine: MachineSpec, p: u32) -> Result<Self, GraphError> {
        if p == 0 {
            return Err(GraphError::InvalidShape(
                "cluster needs at least one device, got p = 0".to_string(),
            ));
        }
        let per_node = (1..=p.min(8))
            .rev()
            .find(|d| p.is_multiple_of(*d))
            .expect("1 divides p");
        Self::new(machine, p / per_node, per_node)
    }

    /// Total number of devices.
    pub fn devices(&self) -> u32 {
        self.nodes * self.devices_per_node
    }

    /// Devices per node.
    pub fn devices_per_node(&self) -> u32 {
        self.devices_per_node
    }

    /// Number of nodes.
    pub fn nodes(&self) -> u32 {
        self.nodes
    }

    /// The machine profile.
    pub fn machine(&self) -> &MachineSpec {
        &self.machine
    }

    /// The two-axis device mesh the link rates are read from.
    pub fn mesh(&self) -> &DeviceMesh {
        &self.mesh
    }

    /// Bandwidth (bytes/s) of the link class. A collective that spans
    /// nodes is bottlenecked by the *slowest* link on its ring — the
    /// inter-node fabric or the intra-node bus, whichever is worse (on the
    /// 2080Ti testbed the host-staged PCIe is the bottleneck even for
    /// cross-node rings).
    pub fn bandwidth(&self, intra: bool) -> f64 {
        if intra {
            self.mesh.axes[0].bandwidth
        } else {
            self.mesh
                .axes
                .iter()
                .map(|a| a.bandwidth)
                .fold(f64::INFINITY, f64::min)
        }
    }

    /// Per-message latency (seconds) of the link class: the axis `α` of
    /// the slowest link the class spans.
    pub fn alpha(&self, intra: bool) -> f64 {
        if intra {
            self.mesh.axes[0].alpha
        } else {
            self.mesh.axes.iter().map(|a| a.alpha).fold(0.0, f64::max)
        }
    }

    /// Whether a communication group confined to an aligned block of
    /// `block` devices stays within one node.
    pub fn block_is_intra(&self, block: u64) -> bool {
        block <= u64::from(self.devices_per_node)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cluster_shape_matches_paper_testbed() {
        let m = MachineSpec::gtx1080ti();
        let t4 = Topology::cluster(m.clone(), 4).unwrap();
        assert_eq!((t4.nodes(), t4.devices_per_node()), (1, 4));
        let t8 = Topology::cluster(m.clone(), 8).unwrap();
        assert_eq!((t8.nodes(), t8.devices_per_node()), (1, 8));
        let t64 = Topology::cluster(m, 64).unwrap();
        assert_eq!((t64.nodes(), t64.devices_per_node()), (8, 8));
        assert_eq!(t64.devices(), 64);
    }

    #[test]
    fn cluster_handles_non_multiples_of_eight() {
        let m = MachineSpec::gtx1080ti();
        let t12 = Topology::cluster(m.clone(), 12).unwrap();
        assert_eq!(t12.devices(), 12);
        assert_eq!(t12.devices_per_node(), 6);
        let t7 = Topology::cluster(m.clone(), 7).unwrap();
        assert_eq!(t7.devices(), 7);
        assert_eq!((t7.nodes(), t7.devices_per_node()), (1, 7));
        let t1 = Topology::cluster(m, 1).unwrap();
        assert_eq!(t1.devices(), 1);
    }

    #[test]
    fn degenerate_shapes_are_errors_not_panics() {
        // Regression: `p = 0` from a hostile wire request used to trip an
        // `assert!` and take the whole server down. It must be a value.
        let m = MachineSpec::gtx1080ti();
        assert!(matches!(
            Topology::cluster(m.clone(), 0),
            Err(GraphError::InvalidShape(_))
        ));
        assert!(matches!(
            Topology::new(m.clone(), 0, 8),
            Err(GraphError::InvalidShape(_))
        ));
        let err = Topology::new(m, 2, 0).unwrap_err();
        assert!(err.to_string().contains("invalid shape"));
    }

    #[test]
    fn interconnect_is_slower_than_intranode() {
        let t = Topology::cluster(MachineSpec::gtx1080ti(), 16).unwrap();
        assert!(t.bandwidth(true) > t.bandwidth(false));
        assert!(t.alpha(true) < t.alpha(false));
    }

    #[test]
    fn link_rates_come_from_the_mesh_axes() {
        // The rates the simulator uses must be exactly the two-tier mesh's
        // axis rates — one source of truth for both cost model and sim.
        let m = MachineSpec::gtx1080ti();
        let t = Topology::cluster(m.clone(), 16).unwrap();
        assert_eq!(t.mesh().axes.len(), 2);
        assert_eq!(t.bandwidth(true), m.link_bandwidth);
        assert_eq!(
            t.bandwidth(false),
            m.internode_bandwidth.min(m.link_bandwidth)
        );
        assert_eq!(t.alpha(true), 5e-6);
        assert_eq!(t.alpha(false), 15e-6);
    }

    #[test]
    fn block_intra_classification() {
        let t = Topology::cluster(MachineSpec::gtx1080ti(), 32).unwrap();
        assert!(t.block_is_intra(8));
        assert!(t.block_is_intra(2));
        assert!(!t.block_is_intra(16));
    }
}
