//! Cluster topology.

use pase_cost::MachineSpec;

/// A hierarchical cluster: `nodes × devices_per_node` devices, fast
/// intra-node links (PCIe in the paper's testbeds) and slower inter-node
/// links (InfiniBand).
#[derive(Clone, Debug)]
pub struct Topology {
    machine: MachineSpec,
    nodes: u32,
    devices_per_node: u32,
}

impl Topology {
    /// Build a topology with explicit shape.
    pub fn new(machine: MachineSpec, nodes: u32, devices_per_node: u32) -> Self {
        assert!(nodes >= 1 && devices_per_node >= 1);
        Self {
            machine,
            nodes,
            devices_per_node,
        }
    }

    /// The paper's testbed shape for `p` GPUs: up to 8 GPUs per node,
    /// spread across `p / per_node` nodes (§IV-B: 4 GPUs on a single node
    /// up to 64 across 8 nodes). `per_node` is the largest divisor of `p`
    /// not exceeding 8, so `devices()` always equals `p` exactly.
    pub fn cluster(machine: MachineSpec, p: u32) -> Self {
        assert!(p >= 1, "need at least one device");
        let per_node = (1..=p.min(8))
            .rev()
            .find(|d| p.is_multiple_of(*d))
            .expect("1 divides p");
        Self::new(machine, p / per_node, per_node)
    }

    /// Total number of devices.
    pub fn devices(&self) -> u32 {
        self.nodes * self.devices_per_node
    }

    /// Devices per node.
    pub fn devices_per_node(&self) -> u32 {
        self.devices_per_node
    }

    /// Number of nodes.
    pub fn nodes(&self) -> u32 {
        self.nodes
    }

    /// The machine profile.
    pub fn machine(&self) -> &MachineSpec {
        &self.machine
    }

    /// Bandwidth (bytes/s) of the link class. A collective that spans
    /// nodes is bottlenecked by the *slowest* link on its ring — the
    /// inter-node fabric or the intra-node bus, whichever is worse (on the
    /// 2080Ti testbed the host-staged PCIe is the bottleneck even for
    /// cross-node rings).
    pub fn bandwidth(&self, intra: bool) -> f64 {
        if intra {
            self.machine.link_bandwidth
        } else {
            self.machine
                .internode_bandwidth
                .min(self.machine.link_bandwidth)
        }
    }

    /// Per-message latency (seconds) of the link class.
    pub fn alpha(&self, intra: bool) -> f64 {
        if intra {
            5e-6
        } else {
            15e-6
        }
    }

    /// Whether a communication group confined to an aligned block of
    /// `block` devices stays within one node.
    pub fn block_is_intra(&self, block: u64) -> bool {
        block <= u64::from(self.devices_per_node)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cluster_shape_matches_paper_testbed() {
        let m = MachineSpec::gtx1080ti();
        let t4 = Topology::cluster(m.clone(), 4);
        assert_eq!((t4.nodes(), t4.devices_per_node()), (1, 4));
        let t8 = Topology::cluster(m.clone(), 8);
        assert_eq!((t8.nodes(), t8.devices_per_node()), (1, 8));
        let t64 = Topology::cluster(m, 64);
        assert_eq!((t64.nodes(), t64.devices_per_node()), (8, 8));
        assert_eq!(t64.devices(), 64);
    }

    #[test]
    fn cluster_handles_non_multiples_of_eight() {
        let m = MachineSpec::gtx1080ti();
        let t12 = Topology::cluster(m.clone(), 12);
        assert_eq!(t12.devices(), 12);
        assert_eq!(t12.devices_per_node(), 6);
        let t7 = Topology::cluster(m.clone(), 7);
        assert_eq!(t7.devices(), 7);
        assert_eq!((t7.nodes(), t7.devices_per_node()), (1, 7));
        let t1 = Topology::cluster(m, 1);
        assert_eq!(t1.devices(), 1);
    }

    #[test]
    fn interconnect_is_slower_than_intranode() {
        let t = Topology::cluster(MachineSpec::gtx1080ti(), 16);
        assert!(t.bandwidth(true) > t.bandwidth(false));
        assert!(t.alpha(true) < t.alpha(false));
    }

    #[test]
    fn block_intra_classification() {
        let t = Topology::cluster(MachineSpec::gtx1080ti(), 32);
        assert!(t.block_is_intra(8));
        assert!(t.block_is_intra(2));
        assert!(!t.block_is_intra(16));
    }
}
