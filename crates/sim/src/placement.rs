//! Canonical device placement.
//!
//! A configuration specifies *how many* pieces each iteration dimension is
//! split into but not *which device* runs each piece (PaSE §II). The paper
//! notes that "a simple greedy assignment that maximizes data locality
//! works sufficiently well in practice"; the canonical equivalent used here
//! (and by Mesh-TF-style device meshes) is a **mixed-radix layout**:
//!
//! * iteration dimensions are radix digits in declaration order, dimension
//!   0 (conventionally the batch) outermost — so data-parallel replicas
//!   span nodes while model-parallel groups stay inside a node, matching
//!   how real deployments lay out hybrid strategies;
//! * when a configuration uses fewer than `p` devices, the shard is
//!   replicated across the leftover factor as the *innermost* digit, so
//!   replicas sit on adjacent devices.
//!
//! Because every digit is a power of two, any communication group (a set
//! of devices that vary only in some digits) lies inside an *aligned block*
//! whose extent is `stride · radix` of its outermost digit; comparing that
//! block to the node size classifies the group as intra- or inter-node.

use pase_cost::Config;

/// The device layout implied by a configuration on `p` devices.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Placement {
    /// Stride of each iteration dimension's digit in the device index.
    strides: Vec<u64>,
    /// Split factor per iteration dimension.
    radix: Vec<u64>,
    /// Devices actively computing distinct shards (`∏ c_i`).
    used: u64,
    /// Replication factor filling the remaining devices.
    replicas: u64,
}

/// How each node's split dimensions are mapped onto the device grid.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum PlacementPolicy {
    /// Iteration dims as radix digits in declaration order, dim 0 (batch)
    /// outermost — the Mesh-TensorFlow-style static mesh.
    #[default]
    Canonical,
    /// The paper's §II greedy locality maximization, applied at the level
    /// the simulator can observe: dimensions whose splits carry the most
    /// intra-layer communication are placed *innermost*, so their groups
    /// land inside a node's fast links.
    CommAware,
}

impl Placement {
    /// Lay out `cfg` on `p` devices with the canonical (declaration-order)
    /// digit assignment.
    pub fn for_config(cfg: &Config, p: u32) -> Self {
        let order: Vec<usize> = (0..cfg.rank()).collect();
        Self::for_config_with_order(cfg, p, &order)
    }

    /// Lay out `cfg` on `p` devices with an explicit digit order: `order`
    /// lists the iteration dimensions from **outermost to innermost**
    /// (must be a permutation of `0..rank`).
    pub fn for_config_with_order(cfg: &Config, p: u32, order: &[usize]) -> Self {
        debug_assert_eq!(order.len(), cfg.rank(), "digit order must cover every dim");
        let radix: Vec<u64> = (0..cfg.rank()).map(|i| u64::from(cfg.split(i))).collect();
        let used: u64 = radix.iter().product();
        let replicas = if used > 0 && u64::from(p) % used == 0 && used <= u64::from(p) {
            u64::from(p) / used
        } else {
            1
        };
        // Mixed radix over `order`, replicas innermost.
        let mut strides = vec![replicas; cfg.rank()];
        let mut stride = replicas;
        for &d in order.iter().rev() {
            strides[d] = stride;
            stride *= radix[d];
        }
        Self {
            strides,
            radix,
            used,
            replicas,
        }
    }

    /// Lay out `cfg` according to `policy`. For [`PlacementPolicy::CommAware`],
    /// `comm_weight[d]` is the total communication volume (bytes) of events
    /// whose group includes dimension `d`; heavier dims are placed
    /// innermost.
    pub fn for_config_with_policy(
        cfg: &Config,
        p: u32,
        policy: PlacementPolicy,
        comm_weight: &[f64],
    ) -> Self {
        match policy {
            PlacementPolicy::Canonical => Self::for_config(cfg, p),
            PlacementPolicy::CommAware => {
                debug_assert_eq!(comm_weight.len(), cfg.rank());
                let mut order: Vec<usize> = (0..cfg.rank()).collect();
                // outermost → innermost: ascending communication weight,
                // declaration order as the tiebreak (keeps batch outermost
                // when weights are equal, preserving cross-layer alignment).
                order.sort_by(|&a, &b| {
                    comm_weight[a]
                        .partial_cmp(&comm_weight[b])
                        .unwrap_or(std::cmp::Ordering::Equal)
                        .then(a.cmp(&b))
                });
                Self::for_config_with_order(cfg, p, &order)
            }
        }
    }

    /// Devices computing distinct shards.
    pub fn used_devices(&self) -> u64 {
        self.used
    }

    /// Replication factor over leftover devices.
    pub fn replicas(&self) -> u64 {
        self.replicas
    }

    /// Stride of iteration dimension `d`'s digit.
    pub fn stride(&self, d: usize) -> u64 {
        self.strides[d]
    }

    /// Extent of the smallest aligned device block containing a
    /// communication group over the given iteration dimensions: the
    /// `stride · radix` of the outermost participating digit (1 if no
    /// participating dimension is actually split).
    pub fn group_block(&self, group_dims: &[u32]) -> u64 {
        group_dims
            .iter()
            .filter(|&&d| self.radix[d as usize] > 1)
            .map(|&d| self.strides[d as usize] * self.radix[d as usize])
            .max()
            .unwrap_or(1)
    }

    /// Block extent of the replica group (for gradient sync of unsplit
    /// nodes replicated over leftover devices): replicas are innermost, so
    /// their block is just the replica count.
    pub fn replica_block(&self) -> u64 {
        self.replicas
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_config_strides_are_nested() {
        // (4, 2, 2) on 16 devices: dim0 outermost (stride 4), dim2 innermost.
        let p = Placement::for_config(&Config::new(&[4, 2, 2]), 16);
        assert_eq!(p.used_devices(), 16);
        assert_eq!(p.replicas(), 1);
        assert_eq!(p.stride(2), 1);
        assert_eq!(p.stride(1), 2);
        assert_eq!(p.stride(0), 4);
    }

    #[test]
    fn partial_config_replicates_innermost() {
        // (4, 1) on 16 devices: 4 shards × 4 adjacent replicas.
        let p = Placement::for_config(&Config::new(&[4, 1]), 16);
        assert_eq!(p.used_devices(), 4);
        assert_eq!(p.replicas(), 4);
        assert_eq!(p.stride(0), 4);
        assert_eq!(p.replica_block(), 4);
    }

    #[test]
    fn group_block_takes_outermost_digit() {
        let p = Placement::for_config(&Config::new(&[4, 2, 2]), 16);
        // innermost dim (stride 1, radix 2): block of 2 → intra on 8/node
        assert_eq!(p.group_block(&[2]), 2);
        // outermost dim (stride 4, radix 4): block of 16 → spans 2 nodes
        assert_eq!(p.group_block(&[0]), 16);
        // combined middle+inner: block of 4
        assert_eq!(p.group_block(&[1, 2]), 4);
        // unsplit dims contribute nothing
        let q = Placement::for_config(&Config::new(&[1, 8]), 8);
        assert_eq!(q.group_block(&[0]), 1);
    }

    #[test]
    fn explicit_order_controls_strides() {
        // order (2, 0, 1): dim 2 outermost, dim 1 innermost.
        let p = Placement::for_config_with_order(&Config::new(&[2, 4, 2]), 16, &[2, 0, 1]);
        assert_eq!(p.stride(1), 1);
        assert_eq!(p.stride(0), 4);
        assert_eq!(p.stride(2), 8);
    }

    #[test]
    fn comm_aware_places_heavy_dims_innermost() {
        // dim 0 (batch, split 4) carries heavy comm; canonical puts it
        // outermost (block 16 → inter-node on 8-per-node), comm-aware pulls
        // it innermost (block 4 → intra-node).
        let cfg = Config::new(&[4, 4]);
        let canonical =
            Placement::for_config_with_policy(&cfg, 16, PlacementPolicy::Canonical, &[1e9, 0.0]);
        let aware =
            Placement::for_config_with_policy(&cfg, 16, PlacementPolicy::CommAware, &[1e9, 0.0]);
        assert_eq!(canonical.group_block(&[0]), 16);
        assert_eq!(aware.group_block(&[0]), 4);
        // without weights differences, comm-aware degenerates to canonical
        let flat =
            Placement::for_config_with_policy(&cfg, 16, PlacementPolicy::CommAware, &[0.0, 0.0]);
        assert_eq!(flat, canonical);
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            /// For any pow-2 config and any digit permutation: strides are a
            /// bijection onto used devices, and every single-dim group block
            /// divides the used-device count.
            #[test]
            fn placement_strides_form_a_bijection(
                exps in prop::collection::vec(0u32..3, 1..5),
                seed in 0u64..64,
            ) {
                let splits: Vec<u32> = exps.iter().map(|e| 1 << e).collect();
                let cfg = Config::new(&splits);
                let used = cfg.product() as u32;
                let p = used; // exact fit
                let mut order: Vec<usize> = (0..cfg.rank()).collect();
                // pseudo-shuffle by seed
                for i in (1..order.len()).rev() {
                    order.swap(i, (seed as usize + i) % (i + 1));
                }
                let pl = Placement::for_config_with_order(&cfg, p, &order);
                // enumerate all digit combinations → device ids must be unique
                let mut ids = std::collections::BTreeSet::new();
                let mut digits = vec![0u64; cfg.rank()];
                loop {
                    let id: u64 = (0..cfg.rank())
                        .map(|d| digits[d] * pl.stride(d))
                        .sum();
                    prop_assert!(ids.insert(id), "duplicate device id {id}");
                    // odometer increment
                    let mut d = 0;
                    loop {
                        if d == cfg.rank() { break; }
                        digits[d] += 1;
                        if digits[d] < u64::from(cfg.split(d)) { break; }
                        digits[d] = 0;
                        d += 1;
                    }
                    if d == cfg.rank() { break; }
                }
                prop_assert_eq!(ids.len() as u32, used);
                prop_assert!(ids.iter().all(|&id| id < u64::from(p)));
                for d in 0..cfg.rank() {
                    let block = pl.group_block(&[d as u32]);
                    prop_assert!(u64::from(used) % block == 0);
                }
            }
        }
    }

    #[test]
    fn batch_major_layout_keeps_model_groups_local() {
        // The hybrid (batch 8, model 4) layout on 32 devices: the model
        // group (dim 1) occupies an aligned block of 4 ≤ 8 → intra-node;
        // the batch group spans the whole machine.
        let p = Placement::for_config(&Config::new(&[8, 4]), 32);
        assert_eq!(p.group_block(&[1]), 4);
        assert_eq!(p.group_block(&[0]), 32);
    }
}
