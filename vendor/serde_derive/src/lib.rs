//! Offline stub of `serde_derive`.
//!
//! The workspace derives `Serialize`/`Deserialize` on its graph and cost
//! types but never serializes through serde (JSON export is hand-rolled in
//! `pase-cost`). These no-op derives keep the `#[derive(...)]` attributes
//! compiling without pulling in syn/quote, which are unavailable offline.

use proc_macro::TokenStream;

/// No-op `#[derive(Serialize)]`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op `#[derive(Deserialize)]`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
