//! Offline stub of `rayon`.
//!
//! Implements the subset of rayon's API the workspace uses with *real*
//! parallelism over `std::thread::scope` workers pulling tasks from an
//! atomic counter. Vendored so the workspace builds without network
//! access; the parallel semantics (worker pool, in-order collection,
//! per-worker `*_init` scratch) match what the search engine needs.
//!
//! Supported surface:
//!
//! * `(a..b).into_par_iter()` for `usize` ranges, with `with_min_len`,
//!   `map`, `map_init`, `for_each`, `for_each_init`, and
//!   `collect::<Vec<_>>()`;
//! * `vec.into_par_iter()` with `map`, `for_each`, `for_each_init`, and
//!   `collect::<Vec<_>>()` (in-order);
//! * [`ThreadPoolBuilder`] / [`ThreadPool::install`] to cap worker counts
//!   (the cap propagates to nested parallel calls made inside `install`);
//! * [`current_num_threads`].

use std::cell::Cell;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

pub mod prelude {
    //! Traits that make `.into_par_iter()` available.
    pub use crate::iter::IntoParallelIterator;
}

pub mod iter;

thread_local! {
    /// 0 = no override (use available parallelism).
    static THREAD_CAP: Cell<usize> = const { Cell::new(0) };
}

/// Number of worker threads parallel operations on this thread will use.
pub fn current_num_threads() -> usize {
    let cap = THREAD_CAP.with(Cell::get);
    if cap > 0 {
        cap
    } else {
        std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1)
    }
}

/// Run `tasks` closures on up to [`current_num_threads`] scoped workers,
/// each worker holding one `init()` scratch value; results are returned in
/// task order. Falls back to the calling thread when one worker suffices.
pub(crate) fn run_tasks_init<S, T, I, W>(tasks: usize, init: I, work: W) -> Vec<T>
where
    T: Send,
    I: Fn() -> S + Sync,
    W: Fn(&mut S, usize) -> T + Sync,
{
    let threads = current_num_threads().min(tasks);
    if threads <= 1 {
        let mut scratch = init();
        return (0..tasks).map(|i| work(&mut scratch, i)).collect();
    }
    let cap = current_num_threads();
    let next = AtomicUsize::new(0);
    let results: Mutex<Vec<(usize, T)>> = Mutex::new(Vec::with_capacity(tasks));
    std::thread::scope(|s| {
        for _ in 0..threads {
            s.spawn(|| {
                // Nested parallel calls inside a worker see the same cap.
                THREAD_CAP.with(|c| c.set(cap));
                let mut scratch = init();
                let mut local: Vec<(usize, T)> = Vec::new();
                loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= tasks {
                        break;
                    }
                    local.push((i, work(&mut scratch, i)));
                }
                results.lock().unwrap().append(&mut local);
            });
        }
    });
    let mut v = results.into_inner().unwrap();
    v.sort_unstable_by_key(|&(i, _)| i);
    v.into_iter().map(|(_, t)| t).collect()
}

/// [`run_tasks_init`] without per-worker scratch.
pub(crate) fn run_tasks<T, W>(tasks: usize, work: W) -> Vec<T>
where
    T: Send,
    W: Fn(usize) -> T + Sync,
{
    run_tasks_init(tasks, || (), |(), i| work(i))
}

/// Error type returned by [`ThreadPoolBuilder::build`] (never produced by
/// the stub, present for API compatibility).
#[derive(Debug)]
pub struct ThreadPoolBuildError;

impl std::fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "thread pool build error")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

/// Builder for a capped [`ThreadPool`].
#[derive(Debug, Default)]
pub struct ThreadPoolBuilder {
    num_threads: usize,
}

impl ThreadPoolBuilder {
    /// Start building.
    pub fn new() -> Self {
        Self::default()
    }

    /// Cap the pool at `n` workers (0 = automatic).
    pub fn num_threads(mut self, n: usize) -> Self {
        self.num_threads = n;
        self
    }

    /// Finish; the stub never fails.
    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        Ok(ThreadPool {
            num_threads: self.num_threads,
        })
    }
}

/// A handle that scopes a worker-count cap (the stub has no persistent
/// worker threads; workers are spawned per parallel operation).
#[derive(Debug)]
pub struct ThreadPool {
    num_threads: usize,
}

impl ThreadPool {
    /// Run `f` with this pool's thread cap applied to every parallel
    /// operation `f` performs (including nested ones).
    pub fn install<R>(&self, f: impl FnOnce() -> R) -> R {
        let prev = THREAD_CAP.with(Cell::get);
        THREAD_CAP.with(|c| c.set(self.num_threads));
        let guard = RestoreCap(prev);
        let r = f();
        drop(guard);
        r
    }

    /// The pool's worker cap (0 = automatic).
    pub fn current_num_threads(&self) -> usize {
        if self.num_threads > 0 {
            self.num_threads
        } else {
            crate::current_num_threads()
        }
    }
}

struct RestoreCap(usize);

impl Drop for RestoreCap {
    fn drop(&mut self) {
        THREAD_CAP.with(|c| c.set(self.0));
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::*;

    #[test]
    fn range_map_collect_is_in_order() {
        let v: Vec<usize> = (0..10_000usize).into_par_iter().map(|i| i * 2).collect();
        assert_eq!(v.len(), 10_000);
        assert!(v.iter().enumerate().all(|(i, &x)| x == 2 * i));
    }

    #[test]
    fn map_init_reuses_scratch_per_worker() {
        let v: Vec<usize> = (0..4096usize)
            .into_par_iter()
            .with_min_len(128)
            .map_init(Vec::<usize>::new, |scratch, i| {
                scratch.push(i);
                i + 1
            })
            .collect();
        assert_eq!(v[10], 11);
    }

    #[test]
    fn vec_for_each_visits_everything() {
        use std::sync::atomic::AtomicUsize;
        let total = AtomicUsize::new(0);
        let chunks: Vec<Vec<usize>> = (0..16).map(|c| vec![c; 100]).collect();
        chunks.into_par_iter().for_each(|chunk| {
            total.fetch_add(chunk.len(), Ordering::Relaxed);
        });
        assert_eq!(total.load(Ordering::Relaxed), 1600);
    }

    #[test]
    fn install_caps_nested_parallelism() {
        let pool = ThreadPoolBuilder::new().num_threads(2).build().unwrap();
        let seen = pool.install(current_num_threads);
        assert_eq!(seen, 2);
        assert_ne!(current_num_threads(), 0);
    }

    #[test]
    fn vec_map_collect_preserves_order() {
        let items: Vec<String> = (0..500).map(|i| format!("x{i}")).collect();
        let lens: Vec<usize> = items.clone().into_par_iter().map(|s| s.len()).collect();
        assert_eq!(lens.len(), 500);
        assert_eq!(lens[0], 2);
        assert_eq!(lens[499], 4);
    }
}
