//! Parallel-iterator subset: `usize` ranges and owned `Vec`s.

use crate::{run_tasks, run_tasks_init};
use std::sync::Mutex;

/// Conversion into a parallel iterator (the entry point `rayon::prelude`
/// re-exports).
pub trait IntoParallelIterator {
    /// The parallel iterator type.
    type Iter;
    /// Convert.
    fn into_par_iter(self) -> Self::Iter;
}

impl IntoParallelIterator for std::ops::Range<usize> {
    type Iter = RangePar;
    fn into_par_iter(self) -> RangePar {
        RangePar {
            start: self.start,
            end: self.end.max(self.start),
            min_len: 1,
        }
    }
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Iter = VecPar<T>;
    fn into_par_iter(self) -> VecPar<T> {
        VecPar { items: self }
    }
}

/// Split a length into near-equal chunks of at least `min_len` items,
/// with no more chunks than `4 × workers` (bounded scheduling overhead).
fn chunk_bounds(len: usize, min_len: usize) -> Vec<(usize, usize)> {
    if len == 0 {
        return Vec::new();
    }
    let workers = crate::current_num_threads();
    let max_chunks = (workers * 4).max(1);
    let chunk = (len.div_ceil(max_chunks)).max(min_len.max(1));
    let n_chunks = len.div_ceil(chunk);
    (0..n_chunks)
        .map(|c| (c * chunk, ((c + 1) * chunk).min(len)))
        .collect()
}

/// Parallel iterator over a `usize` range.
#[derive(Clone, Copy, Debug)]
pub struct RangePar {
    start: usize,
    end: usize,
    min_len: usize,
}

impl RangePar {
    /// Require at least `n` items per work chunk.
    pub fn with_min_len(mut self, n: usize) -> Self {
        self.min_len = n.max(1);
        self
    }

    /// Lazily map each index.
    pub fn map<T, F>(self, f: F) -> MapPar<F>
    where
        T: Send,
        F: Fn(usize) -> T + Sync,
    {
        MapPar { range: self, f }
    }

    /// Lazily map each index with per-worker scratch from `init`.
    pub fn map_init<S, T, I, F>(self, init: I, f: F) -> MapInitPar<I, F>
    where
        T: Send,
        I: Fn() -> S + Sync,
        F: Fn(&mut S, usize) -> T + Sync,
    {
        MapInitPar {
            range: self,
            init,
            f,
        }
    }

    /// Run `f` on every index.
    pub fn for_each<F: Fn(usize) + Sync>(self, f: F) {
        self.for_each_init(|| (), |(), i| f(i));
    }

    /// Run `f` on every index with per-worker scratch from `init`.
    pub fn for_each_init<S, I, F>(self, init: I, f: F)
    where
        I: Fn() -> S + Sync,
        F: Fn(&mut S, usize) + Sync,
    {
        let bounds = chunk_bounds(self.end - self.start, self.min_len);
        let start = self.start;
        run_tasks_init(bounds.len(), init, |scratch, c| {
            let (lo, hi) = bounds[c];
            for i in lo..hi {
                f(scratch, start + i);
            }
        });
    }
}

/// Lazy map over a [`RangePar`].
pub struct MapPar<F> {
    range: RangePar,
    f: F,
}

impl<F> MapPar<F> {
    /// Evaluate in parallel, collecting results in index order.
    pub fn collect<T, C>(self) -> C
    where
        T: Send,
        F: Fn(usize) -> T + Sync,
        C: FromParallel<T>,
    {
        let f = self.f;
        let bounds = chunk_bounds(self.range.end - self.range.start, self.range.min_len);
        let start = self.range.start;
        let chunks: Vec<Vec<T>> = run_tasks(bounds.len(), |c| {
            let (lo, hi) = bounds[c];
            (lo..hi).map(|i| f(start + i)).collect()
        });
        C::from_chunks(chunks)
    }
}

/// Lazy map-with-scratch over a [`RangePar`].
pub struct MapInitPar<I, F> {
    range: RangePar,
    init: I,
    f: F,
}

impl<I, F> MapInitPar<I, F> {
    /// Evaluate in parallel, collecting results in index order.
    pub fn collect<S, T, C>(self) -> C
    where
        T: Send,
        I: Fn() -> S + Sync,
        F: Fn(&mut S, usize) -> T + Sync,
        C: FromParallel<T>,
    {
        let (init, f) = (self.init, self.f);
        let bounds = chunk_bounds(self.range.end - self.range.start, self.range.min_len);
        let start = self.range.start;
        let chunks: Vec<Vec<T>> = run_tasks_init(bounds.len(), init, |scratch, c| {
            let (lo, hi) = bounds[c];
            (lo..hi).map(|i| f(scratch, start + i)).collect()
        });
        C::from_chunks(chunks)
    }
}

/// Parallel iterator over an owned `Vec` (items distributed whole; use for
/// coarse-grained tasks such as per-table or per-chunk work).
pub struct VecPar<T> {
    items: Vec<T>,
}

impl<T: Send> VecPar<T> {
    /// Map every item in parallel; results collected in input order.
    pub fn map<U, F>(self, f: F) -> VecMapPar<T, F>
    where
        U: Send,
        F: Fn(T) -> U + Sync,
    {
        VecMapPar {
            items: self.items,
            f,
        }
    }

    /// Run `f` on every item.
    pub fn for_each<F: Fn(T) + Sync>(self, f: F) {
        self.for_each_init(|| (), |(), t| f(t));
    }

    /// Run `f` on every item with per-worker scratch from `init`.
    pub fn for_each_init<S, I, F>(self, init: I, f: F)
    where
        I: Fn() -> S + Sync,
        F: Fn(&mut S, T) + Sync,
    {
        let slots: Vec<Mutex<Option<T>>> = self
            .items
            .into_iter()
            .map(|t| Mutex::new(Some(t)))
            .collect();
        run_tasks_init(slots.len(), init, |scratch, i| {
            let item = slots[i].lock().unwrap().take().expect("item taken once");
            f(scratch, item);
        });
    }
}

/// Lazy map over a [`VecPar`].
pub struct VecMapPar<T, F> {
    items: Vec<T>,
    f: F,
}

impl<T: Send, F> VecMapPar<T, F> {
    /// Evaluate in parallel, collecting results in input order.
    pub fn collect<U, C>(self) -> C
    where
        U: Send,
        F: Fn(T) -> U + Sync,
        C: FromParallel<U>,
    {
        let f = self.f;
        let slots: Vec<Mutex<Option<T>>> = self
            .items
            .into_iter()
            .map(|t| Mutex::new(Some(t)))
            .collect();
        let out: Vec<U> = run_tasks(slots.len(), |i| {
            let item = slots[i].lock().unwrap().take().expect("item taken once");
            f(item)
        });
        C::from_chunks(vec![out])
    }
}

/// Collection target of a parallel `collect` (only `Vec` is supported).
pub trait FromParallel<T> {
    /// Assemble from per-chunk result vectors, already in order.
    fn from_chunks(chunks: Vec<Vec<T>>) -> Self;
}

impl<T> FromParallel<T> for Vec<T> {
    fn from_chunks(chunks: Vec<Vec<T>>) -> Self {
        let total = chunks.iter().map(Vec::len).sum();
        let mut out = Vec::with_capacity(total);
        for c in chunks {
            out.extend(c);
        }
        out
    }
}
