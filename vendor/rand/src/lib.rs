//! Offline stub of the `rand` crate.
//!
//! Implements the subset of the 0.8 API the workspace uses: `StdRng`
//! (seedable, deterministic), the [`Rng`] extension trait with
//! `gen`, `gen_range`, and `gen_bool`, and [`SeedableRng`]. The generator
//! is SplitMix64 — statistically fine for the MCMC baseline and property
//! tests, deterministic across platforms, and dependency-free.

/// Core generator trait (the `RngCore` subset in use).
pub trait RngCore {
    /// Next raw 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Next raw 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Construction of reproducible generators from seeds.
pub trait SeedableRng: Sized {
    /// Build a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// A value that can be sampled uniformly from the `Standard` distribution.
pub trait Standard: Sized {
    /// Sample one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f32 {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for u64 {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl Standard for u32 {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> u32 {
        rng.next_u32()
    }
}

impl Standard for bool {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// A range a uniform sample can be drawn from (`gen_range` argument).
pub trait SampleRange<T> {
    /// Draw one uniform sample.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            #[inline]
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                let span = (self.end - self.start) as u64;
                // Modulo bias is irrelevant at these span sizes for a
                // heuristic search / test-input generator.
                self.start + (rng.next_u64() % span) as $t
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            #[inline]
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range in gen_range");
                let span = (hi - lo) as u64 + 1;
                lo + (rng.next_u64() % span) as $t
            }
        }
    )*};
}
int_range!(u8, u16, u32, u64, usize, i32, i64, isize);

impl SampleRange<f64> for std::ops::Range<f64> {
    #[inline]
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        self.start + f64::sample(rng) * (self.end - self.start)
    }
}

/// The user-facing extension trait.
pub trait Rng: RngCore {
    /// Sample a value of an inferred type from the standard distribution.
    #[inline]
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Uniform sample from a range.
    #[inline]
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// Bernoulli sample with probability `p`.
    #[inline]
    fn gen_bool(&mut self, p: f64) -> bool {
        f64::sample(self) < p
    }
}

impl<T: RngCore + ?Sized> Rng for T {}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic SplitMix64 generator standing in for `rand::rngs::StdRng`.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            Self { state: seed }
        }
    }

    /// Alias: the stub's small generator is the same as its standard one.
    pub type SmallRng = StdRng;
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn ranges_are_respected() {
        let mut r = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x: usize = r.gen_range(3..17);
            assert!((3..17).contains(&x));
            let y = r.gen_range(0.0..2.5f64);
            assert!((0.0..2.5).contains(&y));
            let f: f64 = r.gen();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn gen_bool_is_calibrated() {
        let mut r = StdRng::seed_from_u64(2);
        let hits = (0..10_000).filter(|_| r.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "hits = {hits}");
    }
}
