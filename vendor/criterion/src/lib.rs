//! Offline stub of `criterion`.
//!
//! Provides the measurement surface the workspace's benches use —
//! [`Criterion::bench_function`], [`Criterion::benchmark_group`] with
//! `sample_size`, [`Bencher::iter`] / [`Bencher::iter_batched`], and the
//! `criterion_group!` / `criterion_main!` macros — backed by a simple
//! wall-clock sampler: per sample, run the routine enough times to cover a
//! minimum window and report the mean per-iteration time across samples.
//!
//! Command-line handling matches what `cargo bench` passes: flags
//! (`--bench`, `--save-baseline x`, …) are ignored and the first bare
//! argument, if any, is a substring filter on benchmark ids.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// How `iter_batched` amortizes setup cost (the stub runs one setup per
/// routine call regardless, which matches `PerIteration` semantics).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BatchSize {
    /// Setup runs before every routine call.
    PerIteration,
    /// Accepted for compatibility; treated as `PerIteration`.
    SmallInput,
    /// Accepted for compatibility; treated as `PerIteration`.
    LargeInput,
}

/// Benchmark driver. Holds the id filter and default sample count.
pub struct Criterion {
    filter: Option<String>,
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        let mut filter = None;
        let mut args = std::env::args().skip(1);
        while let Some(a) = args.next() {
            if a == "--save-baseline" || a == "--baseline" || a == "--load-baseline" {
                let _ = args.next(); // consume the flag's value
            } else if a.starts_with('-') {
                // --bench, --test, --noplot, ... : ignore
            } else if filter.is_none() {
                filter = Some(a);
            }
        }
        Self {
            filter,
            sample_size: 20,
        }
    }
}

impl Criterion {
    /// Measure `routine` under the id `id` (skipped if the CLI filter
    /// doesn't match).
    pub fn bench_function<S: AsRef<str>, F: FnMut(&mut Bencher)>(
        &mut self,
        id: S,
        routine: F,
    ) -> &mut Self {
        run_one(
            id.as_ref(),
            self.filter.as_deref(),
            self.sample_size,
            routine,
        );
        self
    }

    /// Start a named group of benchmarks sharing settings.
    pub fn benchmark_group<S: AsRef<str>>(&mut self, name: S) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.as_ref().to_string(),
            filter: self.filter.clone(),
            sample_size: self.sample_size,
            _parent: std::marker::PhantomData,
        }
    }

    /// Run registered group functions against CLI args (used by
    /// `criterion_main!`).
    pub fn final_summary(&self) {}
}

/// A group of benchmarks with shared configuration.
pub struct BenchmarkGroup<'a> {
    name: String,
    filter: Option<String>,
    sample_size: usize,
    _parent: std::marker::PhantomData<&'a ()>,
}

impl BenchmarkGroup<'_> {
    /// Set the number of timing samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Measure `routine` under `group_name/id`.
    pub fn bench_function<S: AsRef<str>, F: FnMut(&mut Bencher)>(
        &mut self,
        id: S,
        routine: F,
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id.as_ref());
        run_one(&full, self.filter.as_deref(), self.sample_size, routine);
        self
    }

    /// Finish the group (no-op in the stub).
    pub fn finish(self) {}
}

/// Passed to routines; records per-iteration timings.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    /// Time `routine`, running it repeatedly per sample.
    pub fn iter<T, F: FnMut() -> T>(&mut self, mut routine: F) {
        // Calibrate: how many iters cover ~5ms, capped for slow routines.
        let start = Instant::now();
        black_box(routine());
        let once = start.elapsed().max(Duration::from_nanos(1));
        let per_sample =
            ((Duration::from_millis(5).as_nanos() / once.as_nanos()).max(1) as usize).min(10_000);
        for _ in 0..self.sample_size {
            let t0 = Instant::now();
            for _ in 0..per_sample {
                black_box(routine());
            }
            self.samples.push(t0.elapsed() / per_sample as u32);
        }
    }

    /// Time `routine` on fresh `setup()` input each call; only the routine
    /// is timed.
    pub fn iter_batched<I, T, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> T,
    {
        for _ in 0..self.sample_size {
            let input = setup();
            let t0 = Instant::now();
            black_box(routine(input));
            self.samples.push(t0.elapsed());
        }
    }
}

fn run_one<F: FnMut(&mut Bencher)>(
    id: &str,
    filter: Option<&str>,
    sample_size: usize,
    mut routine: F,
) {
    if let Some(f) = filter {
        if !id.contains(f) {
            return;
        }
    }
    let mut b = Bencher {
        samples: Vec::new(),
        sample_size,
    };
    routine(&mut b);
    if b.samples.is_empty() {
        println!("{id:<48} (no samples)");
        return;
    }
    b.samples.sort_unstable();
    let total: Duration = b.samples.iter().sum();
    let mean = total / b.samples.len() as u32;
    let median = b.samples[b.samples.len() / 2];
    println!(
        "{id:<48} mean {:>12} median {:>12} ({} samples)",
        fmt_duration(mean),
        fmt_duration(median),
        b.samples.len()
    );
}

fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.2} µs", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else {
        format!("{:.3} s", ns as f64 / 1e9)
    }
}

/// Collect benchmark functions under one group name.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Entry point running every group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_filters() {
        let mut c = Criterion {
            filter: Some("match".into()),
            sample_size: 3,
        };
        let mut ran = 0u32;
        c.bench_function("will_match/x", |b| {
            b.iter(|| 1 + 1);
        });
        c.bench_function("skipped", |_b| {
            ran += 1;
        });
        assert_eq!(ran, 0);
    }

    #[test]
    fn iter_batched_times_each_sample() {
        let mut b = Bencher {
            samples: Vec::new(),
            sample_size: 4,
        };
        b.iter_batched(|| vec![1u8; 64], |v| v.len(), BatchSize::PerIteration);
        assert_eq!(b.samples.len(), 4);
    }
}
