//! Offline stub of `serde`.
//!
//! The workspace only *declares* serde derives (no serde-based
//! serialization is performed; JSON export is hand-written). This stub
//! provides the `Serialize`/`Deserialize` trait names for imports and
//! re-exports the no-op derive macros so `#[derive(Serialize)]` compiles.

pub use serde_derive::{Deserialize, Serialize};

/// Marker trait standing in for `serde::Serialize`.
pub trait Serialize {}

/// Marker trait standing in for `serde::Deserialize`.
pub trait Deserialize<'de>: Sized {}
