//! Offline stub of `proptest`.
//!
//! Runs each property over `ProptestConfig::cases` deterministic
//! pseudo-random inputs (fixed seed per case index — reproducible across
//! runs and platforms). No shrinking: on failure the offending inputs are
//! printed via `Debug` and the test panics.
//!
//! Supported surface (what the workspace uses):
//!
//! * `proptest! { #![proptest_config(...)] #[test] fn f(x in strat, ...) { ... } }`
//! * `prop_assert!`, `prop_assert_eq!`
//! * Strategies: integer/float ranges, `Just`, tuples, `Vec<S>`,
//!   `prop::collection::vec`, `prop::sample::select`,
//!   `.prop_map(...)`, `.prop_flat_map(...)`

use std::fmt::Debug;

pub mod prelude {
    //! The usual glob import.
    pub use crate::{prop, Just, ProptestConfig, Strategy};
    // Macros are exported at crate root via #[macro_export]; re-export the
    // names so `use proptest::prelude::*` brings them in scope like the
    // real crate does.
    pub use crate::{prop_assert, prop_assert_eq, proptest};
}

/// Deterministic SplitMix64 stream used to generate case inputs.
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seed a stream.
    pub fn new(seed: u64) -> Self {
        Self {
            state: seed ^ 0x9E37_79B9_7F4A_7C15,
        }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform in `[0, bound)`; `bound` must be nonzero.
    pub fn below(&mut self, bound: u64) -> u64 {
        self.next_u64() % bound
    }
}

/// Runner configuration (`cases` is the only knob the stub honors).
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of random cases per property.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 64 }
    }
}

impl ProptestConfig {
    /// A config running `cases` random cases.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

/// A generator of random values (no shrinking in the stub).
pub trait Strategy {
    /// The generated type.
    type Value: Debug;

    /// Generate one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values.
    fn prop_map<O: Debug, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { base: self, f }
    }

    /// Generate a value, then a second strategy derived from it.
    fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { base: self, f }
    }
}

/// `prop_map` adapter.
pub struct Map<S, F> {
    base: S,
    f: F,
}

impl<S: Strategy, O: Debug, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.base.generate(rng))
    }
}

/// `prop_flat_map` adapter.
pub struct FlatMap<S, F> {
    base: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;
    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        let mid = self.base.generate(rng);
        (self.f)(mid).generate(rng)
    }
}

/// A strategy that always yields a clone of one value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone + Debug>(pub T);

impl<T: Clone + Debug> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! int_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end - self.start) as u64;
                self.start + rng.below(span) as $t
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi - lo) as u64 + 1;
                lo + rng.below(span) as $t
            }
        }
    )*};
}
int_strategy!(u8, u16, u32, u64, usize, i32, i64, isize);

impl Strategy for std::ops::Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        self.start + rng.next_f64() * (self.end - self.start)
    }
}

macro_rules! tuple_strategy {
    ($($name:ident: $idx:tt),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    };
}
tuple_strategy!(A: 0);
tuple_strategy!(A: 0, B: 1);
tuple_strategy!(A: 0, B: 1, C: 2);
tuple_strategy!(A: 0, B: 1, C: 2, D: 3);
tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4);
tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4, G: 5);

impl<S: Strategy> Strategy for Vec<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        self.iter().map(|s| s.generate(rng)).collect()
    }
}

/// Sub-modules mirroring `proptest::prop::*` paths.
pub mod prop {
    //! `prop::collection` and `prop::sample`.

    pub mod collection {
        //! Collection strategies.
        use crate::{Strategy, TestRng};
        use std::fmt::Debug;

        /// Length specification for [`vec`]: a fixed size or a range.
        pub trait SizeSpec {
            /// Draw a length.
            fn pick(&self, rng: &mut TestRng) -> usize;
        }

        impl SizeSpec for usize {
            fn pick(&self, _rng: &mut TestRng) -> usize {
                *self
            }
        }

        impl SizeSpec for std::ops::Range<usize> {
            fn pick(&self, rng: &mut TestRng) -> usize {
                assert!(self.start < self.end, "empty size range");
                self.start + rng.below((self.end - self.start) as u64) as usize
            }
        }

        impl SizeSpec for std::ops::RangeInclusive<usize> {
            fn pick(&self, rng: &mut TestRng) -> usize {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty size range");
                lo + rng.below((hi - lo) as u64 + 1) as usize
            }
        }

        /// Strategy for `Vec`s of `elem` values with a length from `size`.
        pub fn vec<S: Strategy>(elem: S, size: impl SizeSpec) -> VecStrategy<S, impl SizeSpec>
        where
            S::Value: Debug,
        {
            VecStrategy { elem, size }
        }

        /// See [`vec`].
        pub struct VecStrategy<S, Z> {
            elem: S,
            size: Z,
        }

        impl<S: Strategy, Z: SizeSpec> Strategy for VecStrategy<S, Z> {
            type Value = Vec<S::Value>;
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let n = self.size.pick(rng);
                (0..n).map(|_| self.elem.generate(rng)).collect()
            }
        }
    }

    pub mod sample {
        //! Sampling strategies.
        use crate::{Strategy, TestRng};
        use std::fmt::Debug;

        /// Uniformly select one of the given values.
        pub fn select<T: Clone + Debug>(options: Vec<T>) -> Select<T> {
            assert!(!options.is_empty(), "select needs at least one option");
            Select { options }
        }

        /// See [`select`].
        #[derive(Clone, Debug)]
        pub struct Select<T: Clone + Debug> {
            options: Vec<T>,
        }

        impl<T: Clone + Debug> Strategy for Select<T> {
            type Value = T;
            fn generate(&self, rng: &mut TestRng) -> T {
                let i = rng.below(self.options.len() as u64) as usize;
                self.options[i].clone()
            }
        }
    }
}

/// Assert inside a property; on failure the case fails with the formatted
/// message (no panic until the runner reports it).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err(format!(
                "assertion failed: {} at {}:{}",
                stringify!($cond),
                file!(),
                line!()
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err(format!(
                "assertion failed: {} at {}:{}: {}",
                stringify!($cond),
                file!(),
                line!(),
                format!($($fmt)+)
            ));
        }
    };
}

/// Equality assert inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        if !(*a == *b) {
            return ::std::result::Result::Err(format!(
                "assertion failed: {} == {} at {}:{}\n  left: {:?}\n right: {:?}",
                stringify!($a),
                stringify!($b),
                file!(),
                line!(),
                a,
                b
            ));
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (a, b) = (&$a, &$b);
        if !(*a == *b) {
            return ::std::result::Result::Err(format!(
                "assertion failed: {} == {} at {}:{}: {}\n  left: {:?}\n right: {:?}",
                stringify!($a),
                stringify!($b),
                file!(),
                line!(),
                format!($($fmt)+),
                a,
                b
            ));
        }
    }};
}

/// Define property tests. Each `pat in strategy` argument is generated
/// fresh per case; the body may use `prop_assert!`/`prop_assert_eq!`.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::ProptestConfig::default()); $($rest)* }
    };
}

/// Internal expansion of [`proptest!`]; not public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($cfg:expr); $( $(#[$meta:meta])* fn $name:ident ( $($pat:pat in $strat:expr),+ $(,)? ) $body:block )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                // Distinct but stable seed per test function.
                let base_seed: u64 = {
                    let name_bytes = stringify!($name).as_bytes();
                    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
                    let mut i = 0;
                    while i < name_bytes.len() {
                        h ^= name_bytes[i] as u64;
                        h = h.wrapping_mul(0x1000_0000_01b3);
                        i += 1;
                    }
                    h
                };
                let strategies = ( $( { $strat }, )+ );
                for case in 0..config.cases {
                    let mut rng = $crate::TestRng::new(base_seed ^ (u64::from(case) << 17));
                    let values = $crate::Strategy::generate(&strategies, &mut rng);
                    // Debug dump of the inputs for failure reports, captured
                    // before the body can move them.
                    let inputs = format!("case {}: {:?}", case, values);
                    let result: ::std::result::Result<(), ::std::string::String> = (|| {
                        let ( $( $pat, )+ ) = values;
                        $body
                        ::std::result::Result::Ok(())
                    })();
                    if let ::std::result::Result::Err(msg) = result {
                        panic!("proptest case failed: {msg}\n  inputs {inputs}");
                    }
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_and_select_generate_in_bounds() {
        let mut rng = crate::TestRng::new(1);
        for _ in 0..100 {
            let x = Strategy::generate(&(3usize..10), &mut rng);
            assert!((3..10).contains(&x));
            let y = Strategy::generate(&prop::sample::select(vec![2u32, 4, 8]), &mut rng);
            assert!([2, 4, 8].contains(&y));
        }
    }

    #[test]
    fn combinators_compose() {
        let strat = prop::collection::vec(1usize..5, 2..6)
            .prop_flat_map(|v| (Just(v.len()), prop::collection::vec(0usize..2, 1..3)))
            .prop_map(|(n, tail)| n + tail.len());
        let mut rng = crate::TestRng::new(9);
        for _ in 0..50 {
            let x = Strategy::generate(&strat, &mut rng);
            assert!((3..=7).contains(&x), "{x}");
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn the_macro_itself_works(a in 0u64..100, v in prop::collection::vec(0u32..4, 1..=3)) {
            prop_assert!(a < 100);
            prop_assert_eq!(v.len(), v.len());
            prop_assert!(!v.is_empty(), "vec was empty: {:?}", v);
        }
    }
}
