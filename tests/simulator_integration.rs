//! Integration tests of the execution simulator against the paper's
//! qualitative claims: machine-balance sensitivity, scaling behavior,
//! memory accounting, and rank agreement with the analytical cost model.

use pase::baselines::{data_parallel, owt};
use pase::core::{random_strategy_costs, Search};
use pase::cost::{ConfigRule, CostTables, MachineSpec};
use pase::models::Benchmark;
use pase::sim::{batch_size, memory_per_device, simulate_step, SimOptions, Topology};

#[test]
fn throughput_grows_with_devices_under_weak_scaling() {
    // Weak scaling: per-device batch constant → throughput should grow
    // (near-linearly for the compute-bound CNNs).
    let machine = MachineSpec::gtx1080ti();
    let opts = SimOptions::default();
    for bench in Benchmark::all() {
        let mut prev = 0.0;
        for p in [4u32, 8, 16, 32] {
            let g = bench.build_for(p);
            let topo = Topology::cluster(machine.clone(), p).unwrap();
            let rep = simulate_step(&g, &data_parallel(&g, p), &topo, &opts);
            assert!(
                rep.throughput > prev,
                "{} throughput must grow with p (p={p}: {} vs {})",
                bench.name(),
                rep.throughput,
                prev
            );
            prev = rep.throughput;
        }
    }
}

#[test]
fn low_machine_balance_increases_strategy_gaps() {
    // §IV-B: inefficiencies are more pronounced on the 2080Ti system.
    let p = 32;
    let opts = SimOptions::default();
    let mut wider = 0;
    for bench in Benchmark::all() {
        let g = bench.build_for(p);
        let gap = |machine: MachineSpec| {
            let topo = Topology::cluster(machine.clone(), p).unwrap();
            let tables = CostTables::build(&g, ConfigRule::new(p), &machine);
            let ours = {
                let r = Search::new(&g)
                    .tables(&tables)
                    .run()
                    .expect_found(bench.name());
                tables.ids_to_strategy(&r.config_ids)
            };
            simulate_step(&g, &ours, &topo, &opts).throughput
                / simulate_step(&g, &data_parallel(&g, p), &topo, &opts).throughput
        };
        let g1080 = gap(MachineSpec::gtx1080ti());
        let g2080 = gap(MachineSpec::rtx2080ti());
        if g2080 > g1080 * 1.02 {
            wider += 1;
        }
        assert!(
            g2080 >= g1080 * 0.9,
            "{}: 2080Ti gap collapsed",
            bench.name()
        );
    }
    assert!(wider >= 2, "2080Ti should widen the gap on most benchmarks");
}

#[test]
fn memory_accounting_reproduces_the_dp_replication_argument() {
    // §I: data parallelism replicates all parameters; parameter-parallel
    // strategies shard them. The FC-heavy AlexNet shows this starkly.
    let p = 32;
    let g = Benchmark::AlexNet.build_for(p);
    let topo = Topology::cluster(MachineSpec::gtx1080ti(), p).unwrap();
    let dp_mem = memory_per_device(&g, &data_parallel(&g, p), &topo);
    let owt_mem = memory_per_device(&g, &owt(&g, p), &topo);
    assert!(
        dp_mem > owt_mem * 1.3,
        "dp {dp_mem:.3e} vs owt {owt_mem:.3e}"
    );
}

#[test]
fn simulator_and_cost_model_rank_strategies_consistently() {
    // The paper's premise: the analytical model need only *order*
    // strategies correctly. Sample random strategies and check rank
    // correlation between F(G, φ) and simulated step time.
    let machine = MachineSpec::gtx1080ti();
    let p = 8;
    for bench in [Benchmark::AlexNet, Benchmark::Rnnlm] {
        let g = bench.build_for(p);
        let tables = CostTables::build(&g, ConfigRule::new(p), &machine);
        let topo = Topology::cluster(machine.clone(), p).unwrap();
        let opts = SimOptions::default();

        let n = g.len();
        let ks: Vec<u64> = g.node_ids().map(|v| tables.k(v) as u64).collect();
        let costs = random_strategy_costs(&g, &tables, 42, 40);
        // Re-derive the same ids to simulate them (same SplitMix stream).
        let mut state = 42u64.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut next = move || {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        let mut pairs: Vec<(f64, f64)> = Vec::new();
        for cost in costs {
            let ids: Vec<u16> = (0..n).map(|v| (next() % ks[v].max(1)) as u16).collect();
            let s = tables.ids_to_strategy(&ids);
            let sim = simulate_step(&g, &s, &topo, &opts).step_seconds;
            pairs.push((cost, sim));
        }
        // Kendall-tau-style concordance over all pairs.
        let mut concordant = 0usize;
        let mut total = 0usize;
        for i in 0..pairs.len() {
            for j in (i + 1)..pairs.len() {
                let (a, b) = (pairs[i], pairs[j]);
                if (a.0 - b.0).abs() < 1e-9 || (a.1 - b.1).abs() < 1e-12 {
                    continue;
                }
                total += 1;
                if (a.0 < b.0) == (a.1 < b.1) {
                    concordant += 1;
                }
            }
        }
        let tau = concordant as f64 / total.max(1) as f64;
        assert!(
            tau > 0.75,
            "{}: cost model orders only {:.0}% of strategy pairs like the simulator",
            bench.name(),
            tau * 100.0
        );
    }
}

#[test]
fn batch_size_matches_weak_scaling_protocol() {
    assert_eq!(batch_size(&Benchmark::AlexNet.build_for(4)), 512);
    assert_eq!(batch_size(&Benchmark::Rnnlm.build_for(4)), 256);
}

#[test]
fn step_breakdown_is_consistent() {
    let p = 16;
    let g = Benchmark::Transformer.build_for(p);
    let topo = Topology::cluster(MachineSpec::gtx1080ti(), p).unwrap();
    let rep = simulate_step(
        &g,
        &data_parallel(&g, p),
        &topo,
        &SimOptions {
            overlap: 0.0,
            ..SimOptions::default()
        },
    );
    let total = rep.compute_seconds + rep.comm_seconds();
    assert!((rep.step_seconds - total).abs() <= 1e-12 * total);
    assert!(rep.gradient_sync_seconds > 0.0, "DP must sync gradients");
}
