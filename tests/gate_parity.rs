//! Adaptive-gate parity: `--prune-gate` may change *when* the dominance
//! prune runs, never *what* the search returns. Every gate mode must give
//! bit-identical cost and config ids on random DAGs and on the four paper
//! benchmarks — the Auto mode's decision is purely a time/work tradeoff.

use pase::core::{PruneGate, Search, SearchResult};
use pase::cost::{ConfigRule, CostTables, MachineSpec, PruneOptions};
use pase::graph::{DimRole, Graph, GraphBuilder, IterDim, Node, NodeId, OpKind, TensorRef};
use pase::models::Benchmark;
use proptest::prelude::*;

/// A compact description of a random DAG (same generator family as
/// `proptests.rs`): per node, a width and the earlier nodes feeding it.
#[derive(Clone, Debug)]
struct RandomDag {
    widths: Vec<u64>,
    feeds: Vec<Vec<usize>>,
}

fn arb_dag(max_nodes: usize) -> impl Strategy<Value = RandomDag> {
    let widths =
        prop::collection::vec(prop::sample::select(vec![16u64, 32, 64, 128]), 2..max_nodes);
    widths.prop_flat_map(|widths| {
        let n = widths.len();
        let feeds = (1..n)
            .map(|i| prop::collection::vec(0..i, 1..=i.min(3)))
            .collect::<Vec<_>>();
        (Just(widths), feeds).prop_map(|(widths, mut feeds)| {
            for f in &mut feeds {
                f.sort_unstable();
                f.dedup();
            }
            let mut all = vec![Vec::new()];
            all.extend(feeds);
            RandomDag { widths, feeds: all }
        })
    })
}

fn fc_node(name: &str, batch: u64, out_w: u64, in_w: u64, ins: usize) -> Node {
    Node {
        name: name.into(),
        op: OpKind::FullyConnected,
        iter_space: vec![
            IterDim::new("b", batch, DimRole::Batch),
            IterDim::new("n", out_w, DimRole::Param),
            IterDim::new("c", in_w, DimRole::Reduction),
        ],
        inputs: (0..ins)
            .map(|_| TensorRef::new(vec![0, 2], vec![batch, in_w]))
            .collect(),
        output: TensorRef::new(vec![0, 1], vec![batch, out_w]),
        params: vec![TensorRef::new(vec![1, 2], vec![out_w, in_w])],
    }
}

fn build_graph(dag: &RandomDag) -> Graph {
    let mut b = GraphBuilder::new();
    let batch = 32;
    let mut ids: Vec<NodeId> = Vec::new();
    for (i, &w) in dag.widths.iter().enumerate() {
        let producers = &dag.feeds[i];
        let in_w = producers.first().map(|&p| dag.widths[p]).unwrap_or(16);
        ids.push(b.add_node(fc_node(&format!("n{i}"), batch, w, in_w, producers.len())));
    }
    for (i, producers) in dag.feeds.iter().enumerate() {
        for &p in producers {
            b.connect(ids[p], ids[i]);
        }
    }
    b.build().expect("random dag builds")
}

/// Run the search over prebuilt tables in one gate mode, pruning requested.
fn run_gated(graph: &Graph, tables: &CostTables, gate: PruneGate) -> SearchResult {
    Search::new(graph)
        .tables(tables)
        .pruning(PruneOptions::default())
        .prune_gate(gate)
        .run()
        .expect_found("gated search")
}

fn assert_parity(graph: &Graph, tables: &CostTables, label: &str) {
    let on = run_gated(graph, tables, PruneGate::On);
    let off = run_gated(graph, tables, PruneGate::Off);
    let auto = run_gated(graph, tables, PruneGate::Auto);
    assert_eq!(
        on.cost.to_bits(),
        off.cost.to_bits(),
        "{label}: gate=on vs gate=off cost"
    );
    assert_eq!(
        on.cost.to_bits(),
        auto.cost.to_bits(),
        "{label}: gate=on vs gate=auto cost"
    );
    assert_eq!(on.config_ids, off.config_ids, "{label}: on vs off ids");
    assert_eq!(on.config_ids, auto.config_ids, "{label}: on vs auto ids");
    // Gate bookkeeping invariants: only Auto records estimates or skips.
    assert!(!on.stats.prune_skipped);
    assert!(!off.stats.prune_skipped);
    assert_eq!(on.stats.gate_dp_est, 0);
    assert!(
        auto.stats.gate_dp_est > 0,
        "{label}: auto must record its DP estimate"
    );
    assert!(auto.stats.gate_prune_est > 0);
    if auto.stats.prune_skipped {
        assert_eq!(
            auto.stats.prune_time.as_nanos(),
            0,
            "{label}: a skipped prune must not cost prune time"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// gate=auto is bit-identical to gate=on and gate=off on random DAGs,
    /// whichever way its estimate falls.
    #[test]
    fn gate_modes_agree_on_random_dags(dag in arb_dag(7)) {
        let g = build_graph(&dag);
        let tables = CostTables::build(&g, ConfigRule::new(4), &MachineSpec::test_machine());
        let on = run_gated(&g, &tables, PruneGate::On);
        let off = run_gated(&g, &tables, PruneGate::Off);
        let auto = run_gated(&g, &tables, PruneGate::Auto);
        prop_assert_eq!(on.cost.to_bits(), off.cost.to_bits());
        prop_assert_eq!(on.cost.to_bits(), auto.cost.to_bits());
        prop_assert_eq!(&on.config_ids, &off.config_ids);
        prop_assert_eq!(&on.config_ids, &auto.config_ids);
    }
}

/// The four paper benchmarks at a mid-size p: parity must hold on the real
/// workloads, including the cells where Auto decides differently from On
/// (AlexNet skips, Transformer prunes).
#[test]
fn gate_modes_agree_on_paper_benchmarks() {
    for bench in Benchmark::all() {
        let p = 8;
        let graph = bench.build_for(p);
        let tables = CostTables::build(&graph, ConfigRule::new(p), &MachineSpec::gtx1080ti());
        assert_parity(&graph, &tables, bench.name());
    }
}
