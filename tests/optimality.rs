//! Theorem 1 cross-checks: the efficient dynamic program (recurrence (4)
//! with GenerateSeq), the naive recurrence (2) with breadth-first ordering,
//! and exhaustive brute-force enumeration must all find exactly the same
//! minimum of `F(G, φ)` — on every graph topology the search handles.

use pase::core::{
    brute_force, naive_best_strategy, ConnectedSetMode, OrderingKind, Search, SearchBudget,
};
use pase::cost::{ConfigRule, CostTables, MachineSpec};
use pase::graph::{Graph, GraphBuilder, NodeId};
use pase::models::ops;

/// fc chain with distinct layer shapes.
fn chain(widths: &[u64]) -> Graph {
    let mut b = GraphBuilder::new();
    let mut prev: Option<NodeId> = None;
    for (i, w) in widths.windows(2).enumerate() {
        let mut node = ops::fully_connected(&format!("fc{i}"), 32, w[1], w[0]);
        if prev.is_none() {
            node.inputs.clear();
        }
        let id = b.add_node(node);
        if let Some(p) = prev {
            b.connect(p, id);
        }
        prev = Some(id);
    }
    b.build().unwrap()
}

/// Diamond with a two-input join.
fn diamond() -> Graph {
    let mut b = GraphBuilder::new();
    let mut src = ops::fully_connected("src", 32, 64, 64);
    src.inputs.clear();
    let s = b.add_node(src);
    let l = b.add_node(ops::fully_connected("left", 32, 64, 64));
    let r = b.add_node(ops::fully_connected("right", 32, 64, 64));
    let mut join = ops::fully_connected("join", 32, 64, 64);
    join.inputs = vec![join.inputs[0].clone(), join.inputs[0].clone()];
    let j = b.add_node(join);
    b.connect(s, l);
    b.connect(s, r);
    b.connect(l, j);
    b.connect(r, j);
    b.build().unwrap()
}

/// Inception-style: fan-out to 3 branches of different depth, concat-free
/// join via a 3-input elementwise node.
fn fan() -> Graph {
    let mut b = GraphBuilder::new();
    let mut src = ops::fully_connected("src", 32, 64, 64);
    src.inputs.clear();
    let s = b.add_node(src);
    let mut ends = Vec::new();
    for (br, depth) in [(0usize, 1usize), (1, 2), (2, 3)] {
        let mut prev = s;
        for d in 0..depth {
            let n = b.add_node(ops::fully_connected(&format!("b{br}_{d}"), 32, 64, 64));
            b.connect(prev, n);
            prev = n;
        }
        ends.push(prev);
    }
    use pase::graph::{DimRole, IterDim, Node, OpKind, TensorRef};
    let join = b.add_node(Node {
        name: "join".into(),
        op: OpKind::Elementwise {
            flops_per_point: 1.0,
        },
        iter_space: vec![
            IterDim::new("b", 32, DimRole::Batch),
            IterDim::new("n", 64, DimRole::Param),
        ],
        inputs: (0..3)
            .map(|_| TensorRef::new(vec![0, 1], vec![32, 64]))
            .collect(),
        output: TensorRef::new(vec![0, 1], vec![32, 64]),
        params: vec![],
    });
    for e in ends {
        b.connect(e, join);
    }
    b.build().unwrap()
}

fn assert_all_engines_agree(g: &Graph, p: u32) {
    let tables = CostTables::build(g, ConfigRule::new(p), &MachineSpec::gtx1080ti());
    let (bf_cost, bf_ids) = brute_force(g, &tables);
    assert!((tables.evaluate_ids(g, &bf_ids) - bf_cost).abs() <= 1e-9 * bf_cost.abs().max(1.0));

    let eff = Search::new(g)
        .tables(&tables)
        .run()
        .expect_found("efficient");
    let naive = naive_best_strategy(g, &tables, SearchBudget::default()).expect_found("naive");
    let rnd = Search::new(g)
        .tables(&tables)
        .ordering(OrderingKind::Random { seed: 99 })
        .connected_sets(ConnectedSetMode::Exact)
        .run()
        .expect_found("random ordering");

    for (label, r) in [("efficient", &eff), ("naive", &naive), ("random", &rnd)] {
        let tol = 1e-9 * bf_cost.abs().max(1.0);
        assert!(
            (r.cost - bf_cost).abs() <= tol,
            "{label} cost {} != brute force {}",
            r.cost,
            bf_cost
        );
        // The extracted strategy must evaluate to the claimed minimum.
        let eval = tables.evaluate_ids(g, &r.config_ids);
        assert!(
            (eval - r.cost).abs() <= tol,
            "{label}: extraction inconsistent"
        );
    }
}

#[test]
fn engines_agree_on_chains() {
    assert_all_engines_agree(&chain(&[64, 128, 64]), 4);
    assert_all_engines_agree(&chain(&[256, 64, 256, 64]), 4);
}

#[test]
fn engines_agree_on_diamond() {
    assert_all_engines_agree(&diamond(), 4);
}

#[test]
fn engines_agree_on_fan() {
    assert_all_engines_agree(&fan(), 2);
}

#[test]
fn engines_agree_at_higher_device_counts() {
    assert_all_engines_agree(&chain(&[512, 512, 512]), 8);
    assert_all_engines_agree(&diamond(), 8);
}

#[test]
fn dp_never_worse_than_sampled_strategies_on_big_models() {
    // Brute force is infeasible on the real benchmarks, but the DP result
    // must lower-bound any sampled strategy.
    use pase::core::random_strategy_costs;
    use pase::models::Benchmark;
    for bench in Benchmark::all() {
        let g = bench.build_tiny();
        let tables = CostTables::build(&g, ConfigRule::new(4), &MachineSpec::gtx1080ti());
        let r = Search::new(&g)
            .tables(&tables)
            .run()
            .expect_found(bench.name());
        for cost in random_strategy_costs(&g, &tables, 7, 100) {
            assert!(
                r.cost <= cost + 1e-6 * cost.abs(),
                "{}: DP {} beaten by random {}",
                bench.name(),
                r.cost,
                cost
            );
        }
    }
}
