//! Integration tests of the baseline strategies and the FlexFlow-style
//! MCMC against the paper-scale models.

use pase::baselines::{
    data_parallel, gnmt_expert, mcmc_search, mesh_tf_expert, owt, McmcOptions, TableOracle,
};
use pase::core::Search;
use pase::cost::{evaluate, ConfigRule, CostTables, MachineSpec};
use pase::models::Benchmark;

#[test]
fn baselines_are_valid_strategies_on_every_benchmark() {
    for bench in Benchmark::all() {
        for p in [4u32, 32] {
            let g = bench.build_for(p);
            for (name, s) in [
                ("dp", data_parallel(&g, p)),
                ("owt", owt(&g, p)),
                ("gnmt", gnmt_expert(&g, p)),
                ("mesh-tf", mesh_tf_expert(&g, p)),
            ] {
                assert_eq!(s.len(), g.len(), "{}/{name}", bench.name());
                assert!(
                    s.max_devices_used() <= u64::from(p),
                    "{}/{name}",
                    bench.name()
                );
                let cost = evaluate(&g, &s, 1000.0);
                assert!(cost.is_finite() && cost > 0.0, "{}/{name}", bench.name());
            }
        }
    }
}

#[test]
fn search_beats_every_baseline_under_the_cost_model() {
    // The paper's core claim restated at the cost-model level: the DP's
    // optimum is ≤ any baseline expressible in the relaxed space.
    let machine = MachineSpec::gtx1080ti();
    let r = machine.flop_byte_ratio();
    for bench in Benchmark::all() {
        let p = 16;
        let g = bench.build_for(p);
        let tables = CostTables::build(&g, ConfigRule::new(p), &machine);
        let best = Search::new(&g)
            .tables(&tables)
            .run()
            .expect_found(bench.name())
            .cost;
        for (name, s) in [
            ("dp", data_parallel(&g, p)),
            ("owt", owt(&g, p)),
            ("gnmt", gnmt_expert(&g, p)),
            ("mesh-tf", mesh_tf_expert(&g, p)),
        ] {
            // Baselines may use fewer devices (products < p), which the
            // strict search space excludes — they can only be *worse or
            // equal* under the cost model when comparable.
            let cost = evaluate(&g, &s, r);
            assert!(
                best <= cost * (1.0 + 1e-9),
                "{}: search {best:.4e} worse than {name} {cost:.4e}",
                bench.name()
            );
        }
    }
}

#[test]
fn analytic_mcmc_converges_toward_dp_optimum_on_path_graph() {
    // On AlexNet (small path graph) the MCMC over the *strict* space with
    // the analytic oracle should get close to the DP optimum but not below
    // it.
    let machine = MachineSpec::gtx1080ti();
    let p = 8;
    let g = Benchmark::AlexNet.build_for(p);
    let tables = CostTables::build(&g, ConfigRule::new(p), &machine);
    let dp_best = Search::new(&g)
        .tables(&tables)
        .run()
        .expect_found("alexnet")
        .cost;

    let k: Vec<usize> = g.node_ids().map(|v| tables.k(v)).collect();
    let oracle = TableOracle::new(&g, &tables);
    let init: Vec<u16> = vec![0; g.len()];
    let res = mcmc_search(
        &g,
        &k,
        &oracle,
        init,
        &McmcOptions {
            max_iters: 60_000,
            half_time_rule: false,
            ..Default::default()
        },
    );
    assert!(
        res.best_cost >= dp_best * (1.0 - 1e-9),
        "MCMC {:.4e} below the proven optimum {:.4e}",
        res.best_cost,
        dp_best
    );
    assert!(
        res.best_cost <= dp_best * 1.5,
        "MCMC {:.4e} should land within 50% of the optimum {:.4e} on a path graph",
        res.best_cost,
        dp_best
    );
}

#[test]
fn owt_matches_its_definition_on_alexnet() {
    let g = Benchmark::AlexNet.build();
    let s = owt(&g, 8);
    for (id, node) in g.iter() {
        let cfg = s.config(id);
        match node.op {
            pase::graph::OpKind::Conv2d { .. } | pase::graph::OpKind::Pool2d { .. } => {
                // data parallel: batch split only
                assert_eq!(cfg.split(0), 8, "{}", node.name);
                assert_eq!(cfg.product(), 8, "{}", node.name);
            }
            pase::graph::OpKind::FullyConnected | pase::graph::OpKind::Softmax => {
                // parameter parallel: out-feature split only
                assert_eq!(cfg.split(0), 1, "{}", node.name);
                assert_eq!(cfg.split(1), 8, "{}", node.name);
            }
            _ => {}
        }
    }
}

#[test]
fn gnmt_expert_splits_lstm_layers_on_rnnlm() {
    let g = Benchmark::Rnnlm.build_for(8);
    let s = gnmt_expert(&g, 8);
    let (id, node) = g
        .iter()
        .find(|(_, n)| matches!(n.op, pase::graph::OpKind::Lstm { .. }))
        .expect("lstm node");
    let cfg = s.config(id);
    let li = node.dim_index("l").unwrap();
    let bi = node.dim_index("b").unwrap();
    assert_eq!(cfg.split(li), 2);
    assert_eq!(cfg.split(bi), 4);
}

#[test]
fn mesh_tf_expert_splits_model_dims_on_transformer() {
    let g = Benchmark::Transformer.build_for(32);
    let s = mesh_tf_expert(&g, 32);
    for (id, node) in g.iter() {
        let cfg = s.config(id);
        match node.op {
            pase::graph::OpKind::Attention => {
                assert_eq!(cfg.split(node.dim_index("h").unwrap()), 8, "{}", node.name);
            }
            pase::graph::OpKind::FeedForward => {
                assert_eq!(cfg.split(node.dim_index("e").unwrap()), 8, "{}", node.name);
            }
            pase::graph::OpKind::Embedding => {
                assert_eq!(cfg.split(node.dim_index("v").unwrap()), 8, "{}", node.name);
            }
            _ => {}
        }
    }
}
