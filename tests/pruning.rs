//! Dominance pruning must be invisible to the search: on every paper
//! benchmark and every device count the pruned DP returns the *bit-identical*
//! optimal cost (see `pase_cost::prune` for why equality is exact, not just
//! approximate), while strictly shrinking the configuration space whenever a
//! dominated configuration exists.

use pase::core::Search;
use pase::cost::{ConfigRule, CostTables, MachineSpec, PruneOptions, PrunedTables};
use pase::models::Benchmark;

/// The ISSUE acceptance criterion: pruned search is bit-identical to
/// unpruned search on all four benchmark models at `p ∈ {8, 32, 64}`.
/// Tiny variants keep the debug-mode DP feasible; the release-mode
/// `bench_search` binary asserts the same identity on the full graphs.
#[test]
fn pruned_search_is_bit_identical_on_all_benchmarks() {
    let machine = MachineSpec::test_machine();
    for bench in Benchmark::all() {
        let graph = bench.build_tiny();
        for p in [8u32, 32, 64] {
            let tables = CostTables::build(&graph, ConfigRule::new(p), &machine);
            let label = format!("{} p={p}", bench.name());

            let plain = Search::new(&graph)
                .tables(&tables)
                .run()
                .expect_found(&label);
            let pruned = Search::new(&graph)
                .tables(&tables)
                .pruning(PruneOptions::default())
                .run()
                .expect_found(&label);

            assert_eq!(
                pruned.cost.to_bits(),
                plain.cost.to_bits(),
                "{label}: pruned optimum {} != unpruned {}",
                pruned.cost,
                plain.cost
            );

            // The back-mapped strategy is valid in the original space and
            // achieves the optimum there.
            assert_eq!(pruned.config_ids.len(), graph.len());
            for v in graph.node_ids() {
                assert!(
                    (pruned.config_ids[v.index()] as usize) < tables.k(v),
                    "{label}: back-mapped id out of range at {:?}",
                    v
                );
            }
            let eval = tables.evaluate_ids(&graph, &pruned.config_ids);
            assert!(
                (eval - plain.cost).abs() <= 1e-9 * plain.cost.abs().max(1.0),
                "{label}: back-mapped strategy {} vs optimum {}",
                eval,
                plain.cost
            );

            // Pruning accounting is consistent and visible in the stats.
            assert_eq!(pruned.stats.k_before, tables.max_k(), "{label}");
            assert!(pruned.stats.max_configs <= pruned.stats.k_before, "{label}");
        }
    }
}

/// Pruning never empties any per-node configuration list, even at device
/// counts where most configurations are dominated.
#[test]
fn pruning_keeps_every_benchmark_config_list_nonempty() {
    let machine = MachineSpec::test_machine();
    for bench in Benchmark::all() {
        let graph = bench.build_tiny();
        for p in [8u32, 64] {
            let tables = CostTables::build(&graph, ConfigRule::new(p), &machine);
            let pruned = PrunedTables::build(&graph, &tables, &PruneOptions::default());
            for v in graph.node_ids() {
                assert!(
                    !pruned.kept_ids(v).is_empty(),
                    "{} p={p}: C({:?}) emptied",
                    bench.name(),
                    v
                );
            }
        }
    }
}
