//! Parity: the `Search` builder must be **bit-identical** to the
//! deprecated free-function entrypoints it replaces — same optimal cost
//! (compared via `to_bits`, not a tolerance) and the same per-node
//! configuration ids, with and without pruning, tracing, and custom DP
//! options. This is the contract that lets callers migrate mechanically.

#![allow(deprecated)]

use pase::core::{
    find_best_strategy, find_best_strategy_pruned, find_best_strategy_pruned_traced,
    find_best_strategy_traced, DpOptions, OrderingKind, Search, SearchOutcome,
};
use pase::cost::{ConfigRule, CostTables, MachineSpec, PruneOptions};
use pase::graph::{Graph, GraphBuilder, IterDim, Node, NodeId, OpKind, TensorRef};
use pase::models::Benchmark;
use pase::obs::Trace;
use proptest::prelude::*;

fn fc_node(name: &str, batch: u64, out_w: u64, in_w: u64, ins: usize) -> Node {
    let dims = vec![
        IterDim::new("b", batch, pase::graph::DimRole::Batch),
        IterDim::new("n", out_w, pase::graph::DimRole::Param),
        IterDim::new("c", in_w, pase::graph::DimRole::Reduction),
    ];
    Node {
        name: name.into(),
        op: OpKind::FullyConnected,
        iter_space: dims,
        inputs: (0..ins)
            .map(|_| TensorRef::new(vec![0, 2], vec![batch, in_w]))
            .collect(),
        output: TensorRef::new(vec![0, 1], vec![batch, out_w]),
        params: vec![TensorRef::new(vec![1, 2], vec![out_w, in_w])],
    }
}

/// A random chain-with-skips DAG of fully-connected layers, mirroring the
/// generator in `proptests.rs` but compact enough for a per-case DP.
fn random_graph(widths: &[u64], skips: &[bool]) -> Graph {
    let mut b = GraphBuilder::new();
    let batch = 32;
    let mut ids: Vec<NodeId> = Vec::new();
    for (i, &w) in widths.iter().enumerate() {
        let in_w = if i == 0 { 16 } else { widths[i - 1] };
        let extra = i >= 2 && skips[i % skips.len()];
        let node = fc_node(
            &format!("n{i}"),
            batch,
            w,
            in_w,
            usize::from(i > 0) + usize::from(extra),
        );
        ids.push(b.add_node(node));
    }
    for i in 1..widths.len() {
        b.connect(ids[i - 1], ids[i]);
        if i >= 2 && skips[i % skips.len()] {
            b.connect(ids[i - 2], ids[i]);
        }
    }
    b.build().expect("parity graph builds")
}

fn assert_identical(label: &str, legacy: &SearchOutcome, builder: &SearchOutcome) {
    let l = legacy
        .found()
        .unwrap_or_else(|| panic!("{label}: legacy failed"));
    let b = builder
        .found()
        .unwrap_or_else(|| panic!("{label}: builder failed"));
    assert_eq!(
        l.cost.to_bits(),
        b.cost.to_bits(),
        "{label}: builder cost {} != legacy cost {}",
        b.cost,
        l.cost
    );
    assert_eq!(
        l.config_ids, b.config_ids,
        "{label}: builder strategy differs from legacy"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Builder == legacy on random DAGs, across plain/pruned/custom-order
    /// entrypoints.
    #[test]
    fn builder_matches_legacy_on_random_dags(
        widths in prop::collection::vec(prop::sample::select(vec![16u64, 32, 64]), 2..7),
        skips in prop::collection::vec(prop::sample::select(vec![false, true]), 3..=3),
        p in prop::sample::select(vec![2u32, 4, 8]),
    ) {
        let g = random_graph(&widths, &skips);
        let tables = CostTables::build(&g, ConfigRule::new(p), &MachineSpec::test_machine());

        let legacy = find_best_strategy(&g, &tables, &DpOptions::default());
        let builder = Search::new(&g).tables(&tables).run().into_outcome();
        assert_identical("plain", &legacy, &builder);

        let legacy = find_best_strategy_pruned(
            &g, &tables, &DpOptions::default(), &PruneOptions::default());
        let builder = Search::new(&g).tables(&tables)
            .pruning(PruneOptions::default())
            .run().into_outcome();
        assert_identical("pruned", &legacy, &builder);

        let opts = DpOptions {
            ordering: OrderingKind::Random { seed: widths.len() as u64 },
            ..DpOptions::default()
        };
        let legacy = find_best_strategy(&g, &tables, &opts);
        let builder = Search::new(&g).tables(&tables).dp_options(opts).run().into_outcome();
        assert_identical("custom ordering", &legacy, &builder);
    }
}

/// The ISSUE acceptance criterion: builder output is bit-identical to the
/// deprecated entrypoints on AlexNet, InceptionV3, RNNLM, and Transformer
/// (tiny variants keep the debug-mode DP feasible, as in `pruning.rs`).
#[test]
fn builder_matches_legacy_on_paper_benchmarks() {
    let machine = MachineSpec::test_machine();
    for bench in Benchmark::all() {
        let graph = bench.build_tiny();
        let p = 8;
        let tables = CostTables::build(&graph, ConfigRule::new(p), &machine);
        let label = format!("{} p={p}", bench.name());

        let legacy = find_best_strategy(&graph, &tables, &DpOptions::default());
        let builder = Search::new(&graph).tables(&tables).run().into_outcome();
        assert_identical(&label, &legacy, &builder);

        let legacy_trace = Trace::new();
        let builder_trace = Trace::new();
        let legacy =
            find_best_strategy_traced(&graph, &tables, &DpOptions::default(), Some(&legacy_trace));
        let builder = Search::new(&graph)
            .tables(&tables)
            .trace(&builder_trace)
            .run()
            .into_outcome();
        assert_identical(&format!("{label} traced"), &legacy, &builder);
        // Both paths record the same DP phases.
        let names = |t: &Trace| {
            let mut v: Vec<String> = t.spans().iter().map(|s| s.name.clone()).collect();
            v.sort();
            v
        };
        assert_eq!(
            names(&legacy_trace),
            names(&builder_trace),
            "{label}: traced phases differ"
        );

        let legacy = find_best_strategy_pruned(
            &graph,
            &tables,
            &DpOptions::default(),
            &PruneOptions::default(),
        );
        let builder = Search::new(&graph)
            .tables(&tables)
            .pruning(PruneOptions::default())
            .run()
            .into_outcome();
        assert_identical(&format!("{label} pruned"), &legacy, &builder);

        let legacy = find_best_strategy_pruned_traced(
            &graph,
            &tables,
            &DpOptions::default(),
            &PruneOptions::default(),
            None,
        );
        assert_identical(&format!("{label} pruned_traced"), &legacy, &builder);
    }
}
