//! Parity: every path into the `Search` builder must be **bit-identical**
//! to every other path that describes the same search — same optimal cost
//! (compared via `to_bits`, not a tolerance) and the same per-node
//! configuration ids. Three equivalences are pinned:
//!
//! * precomputed `.tables(...)` == internal build from `.machine(...)` ==
//!   internal build from the flat `.mesh(...)` of the same profile;
//! * pruning/tracing/custom-ordering knobs behave identically across
//!   those entry paths;
//! * a flat single-axis [`DeviceMesh`] reproduces the scalar machine
//!   model exactly (the deeper per-`p`, per-kernel sweep lives in
//!   `mesh_parity.rs`).
//!
//! This is the contract that let callers of the removed
//! `find_best_strategy*` free-function grid migrate mechanically.

use pase::core::{DpOptions, OrderingKind, Search, SearchOutcome};
use pase::cost::{ConfigRule, CostTables, DeviceMesh, MachineSpec, PruneOptions};
use pase::graph::{Graph, GraphBuilder, IterDim, Node, NodeId, OpKind, TensorRef};
use pase::models::Benchmark;
use pase::obs::Trace;
use proptest::prelude::*;

fn fc_node(name: &str, batch: u64, out_w: u64, in_w: u64, ins: usize) -> Node {
    let dims = vec![
        IterDim::new("b", batch, pase::graph::DimRole::Batch),
        IterDim::new("n", out_w, pase::graph::DimRole::Param),
        IterDim::new("c", in_w, pase::graph::DimRole::Reduction),
    ];
    Node {
        name: name.into(),
        op: OpKind::FullyConnected,
        iter_space: dims,
        inputs: (0..ins)
            .map(|_| TensorRef::new(vec![0, 2], vec![batch, in_w]))
            .collect(),
        output: TensorRef::new(vec![0, 1], vec![batch, out_w]),
        params: vec![TensorRef::new(vec![1, 2], vec![out_w, in_w])],
    }
}

/// A random chain-with-skips DAG of fully-connected layers, mirroring the
/// generator in `proptests.rs` but compact enough for a per-case DP.
fn random_graph(widths: &[u64], skips: &[bool]) -> Graph {
    let mut b = GraphBuilder::new();
    let batch = 32;
    let mut ids: Vec<NodeId> = Vec::new();
    for (i, &w) in widths.iter().enumerate() {
        let in_w = if i == 0 { 16 } else { widths[i - 1] };
        let extra = i >= 2 && skips[i % skips.len()];
        let node = fc_node(
            &format!("n{i}"),
            batch,
            w,
            in_w,
            usize::from(i > 0) + usize::from(extra),
        );
        ids.push(b.add_node(node));
    }
    for i in 1..widths.len() {
        b.connect(ids[i - 1], ids[i]);
        if i >= 2 && skips[i % skips.len()] {
            b.connect(ids[i - 2], ids[i]);
        }
    }
    b.build().expect("parity graph builds")
}

fn assert_identical(label: &str, reference: &SearchOutcome, other: &SearchOutcome) {
    let r = reference
        .found()
        .unwrap_or_else(|| panic!("{label}: reference path failed"));
    let o = other
        .found()
        .unwrap_or_else(|| panic!("{label}: compared path failed"));
    assert_eq!(
        r.cost.to_bits(),
        o.cost.to_bits(),
        "{label}: cost {} != reference cost {}",
        o.cost,
        r.cost
    );
    assert_eq!(
        r.config_ids, o.config_ids,
        "{label}: strategy differs from reference"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// All entry paths agree on random DAGs, across plain/pruned/custom
    /// orderings.
    #[test]
    fn entry_paths_agree_on_random_dags(
        widths in prop::collection::vec(prop::sample::select(vec![16u64, 32, 64]), 2..7),
        skips in prop::collection::vec(prop::sample::select(vec![false, true]), 3..=3),
        p in prop::sample::select(vec![2u32, 4, 8]),
    ) {
        let g = random_graph(&widths, &skips);
        let m = MachineSpec::test_machine();
        let tables = CostTables::build(&g, ConfigRule::new(p), &m);

        let precomputed = Search::new(&g).tables(&tables).run().into_outcome();
        let from_machine = Search::new(&g)
            .devices(p)
            .machine(m.clone())
            .run()
            .into_outcome();
        assert_identical("machine knob", &precomputed, &from_machine);
        let from_mesh = Search::new(&g)
            .devices(p)
            .mesh(DeviceMesh::flat(&m))
            .run()
            .into_outcome();
        assert_identical("flat mesh knob", &precomputed, &from_mesh);

        let pruned_pre = Search::new(&g).tables(&tables)
            .pruning(PruneOptions::default())
            .run().into_outcome();
        let pruned_mesh = Search::new(&g)
            .devices(p)
            .mesh(DeviceMesh::flat(&m))
            .pruning(PruneOptions::default())
            .run().into_outcome();
        assert_identical("pruned", &pruned_pre, &pruned_mesh);
        // Pruning is an optimization, never a different optimum.
        assert_eq!(
            precomputed.found().unwrap().cost.to_bits(),
            pruned_pre.found().unwrap().cost.to_bits(),
            "pruning changed the optimal cost"
        );

        let opts = DpOptions {
            ordering: OrderingKind::Random { seed: widths.len() as u64 },
            ..DpOptions::default()
        };
        let order_pre = Search::new(&g).tables(&tables)
            .dp_options(opts).run().into_outcome();
        let order_mesh = Search::new(&g)
            .devices(p)
            .mesh(DeviceMesh::flat(&m))
            .dp_options(opts)
            .run().into_outcome();
        assert_identical("custom ordering", &order_pre, &order_mesh);
    }
}

/// Entry-path parity on AlexNet, InceptionV3, RNNLM, and Transformer
/// (tiny variants keep the debug-mode DP feasible, as in `pruning.rs`),
/// including traced runs recording the same phases.
#[test]
fn entry_paths_agree_on_paper_benchmarks() {
    let machine = MachineSpec::test_machine();
    for bench in Benchmark::all() {
        let graph = bench.build_tiny();
        let p = 8;
        let tables = CostTables::build(&graph, ConfigRule::new(p), &machine);
        let label = format!("{} p={p}", bench.name());

        let precomputed = Search::new(&graph).tables(&tables).run().into_outcome();
        let internal = Search::new(&graph)
            .devices(p)
            .machine(machine.clone())
            .run()
            .into_outcome();
        assert_identical(&label, &precomputed, &internal);

        let pre_trace = Trace::new();
        let mesh_trace = Trace::new();
        let traced_pre = Search::new(&graph)
            .tables(&tables)
            .trace(&pre_trace)
            .run()
            .into_outcome();
        let traced_mesh = Search::new(&graph)
            .devices(p)
            .mesh(DeviceMesh::flat(&machine))
            .trace(&mesh_trace)
            .run()
            .into_outcome();
        assert_identical(&format!("{label} traced"), &traced_pre, &traced_mesh);
        // Both paths record the same DP phases (the internal-build path
        // additionally records its table-build spans).
        let names = |t: &Trace| {
            let mut v: Vec<String> = t.spans().iter().map(|s| s.name.clone()).collect();
            v.sort();
            v
        };
        let pre_names = names(&pre_trace);
        let mesh_names = names(&mesh_trace);
        for n in &pre_names {
            assert!(
                mesh_names.contains(n),
                "{label}: phase {n} missing from internal-build trace"
            );
        }

        let pruned_pre = Search::new(&graph)
            .tables(&tables)
            .pruning(PruneOptions::default())
            .run()
            .into_outcome();
        let pruned_mesh = Search::new(&graph)
            .devices(p)
            .mesh(DeviceMesh::flat(&machine))
            .pruning(PruneOptions::default())
            .run()
            .into_outcome();
        assert_identical(&format!("{label} pruned"), &pruned_pre, &pruned_mesh);
    }
}
