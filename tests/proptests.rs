//! Property-based tests over randomly generated computation graphs.
//!
//! Generated graphs are small DAGs of fully-connected layers with random
//! shapes and connectivity, so that brute-force enumeration stays feasible
//! and every search engine can be cross-checked on thousands of topologies.

use pase::core::{
    brute_force, dependent_set_sizes, generate_seq_with_sets, naive_best_strategy, optcnn_search,
    random_strategy_costs, ConnectedSetMode, OrderingKind, ReductionOutcome, Search, SearchBudget,
    VertexStructure,
};
use pase::cost::{
    all_gather_bytes, all_reduce_bytes, enumerate_configs, evaluate, Config, ConfigRule,
    CostTables, MachineSpec, PruneOptions, PrunedTables, Strategy as ParallelStrategy,
    TableOptions,
};
use pase::graph::{EdgeId, Graph, GraphBuilder, IterDim, Node, NodeId, OpKind, TensorRef};
use proptest::prelude::*;

/// A compact description of a random DAG: per node, the (pow-2-ish) width
/// and the set of earlier nodes feeding it.
#[derive(Clone, Debug)]
struct RandomDag {
    widths: Vec<u64>,
    feeds: Vec<Vec<usize>>, // for node i: indices < i of its producers
}

fn arb_dag(max_nodes: usize) -> impl Strategy<Value = RandomDag> {
    let widths =
        prop::collection::vec(prop::sample::select(vec![16u64, 32, 64, 128]), 2..max_nodes);
    widths.prop_flat_map(|widths| {
        let n = widths.len();
        let feeds = (1..n)
            .map(|i| prop::collection::vec(0..i, 1..=i.min(3)))
            .collect::<Vec<_>>();
        (Just(widths), feeds).prop_map(|(widths, mut feeds)| {
            for f in &mut feeds {
                f.sort_unstable();
                f.dedup();
            }
            let mut all = vec![Vec::new()];
            all.extend(feeds);
            RandomDag { widths, feeds: all }
        })
    })
}

/// A fully-connected node whose input width is the sum of its producers'
/// output widths (multi-input nodes sum elementwise-style over slots).
fn fc_node(name: &str, batch: u64, out_w: u64, in_w: u64, ins: usize) -> Node {
    let dims = vec![
        IterDim::new("b", batch, pase::graph::DimRole::Batch),
        IterDim::new("n", out_w, pase::graph::DimRole::Param),
        IterDim::new("c", in_w, pase::graph::DimRole::Reduction),
    ];
    Node {
        name: name.into(),
        op: OpKind::FullyConnected,
        iter_space: dims,
        inputs: (0..ins)
            .map(|_| TensorRef::new(vec![0, 2], vec![batch, in_w]))
            .collect(),
        output: TensorRef::new(vec![0, 1], vec![batch, out_w]),
        params: vec![TensorRef::new(vec![1, 2], vec![out_w, in_w])],
    }
}

fn build_graph(dag: &RandomDag) -> Graph {
    let mut b = GraphBuilder::new();
    let batch = 32;
    let mut ids: Vec<NodeId> = Vec::new();
    for (i, &w) in dag.widths.iter().enumerate() {
        let producers = &dag.feeds[i];
        // all producers of node i feed tensors of their own width; use the
        // first producer's width as this layer's contraction width (other
        // slots share the tensor map — the cost model only needs shapes).
        let in_w = producers.first().map(|&p| dag.widths[p]).unwrap_or(16);
        let node = fc_node(&format!("n{i}"), batch, w, in_w, producers.len());
        ids.push(b.add_node(node));
    }
    for (i, producers) in dag.feeds.iter().enumerate() {
        for &p in producers {
            b.connect(ids[p], ids[i]);
        }
    }
    b.build().expect("random dag builds")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Theorem 1: the efficient DP equals brute force on random DAGs.
    #[test]
    fn dp_equals_brute_force(dag in arb_dag(7)) {
        let g = build_graph(&dag);
        let tables = CostTables::build(&g, ConfigRule::new(4), &MachineSpec::test_machine());
        let (bf, _) = brute_force(&g, &tables);
        let r = Search::new(&g).tables(&tables).run().expect_found("dp");
        prop_assert!((r.cost - bf).abs() <= 1e-9 * bf.abs().max(1.0),
            "dp {} vs brute {}", r.cost, bf);
        // extraction consistency
        let eval = tables.evaluate_ids(&g, &r.config_ids);
        prop_assert!((eval - r.cost).abs() <= 1e-9 * r.cost.abs().max(1.0));
    }

    /// All orderings and both recurrence modes agree.
    #[test]
    fn orderings_agree(dag in arb_dag(8), seed in 0u64..1000) {
        let g = build_graph(&dag);
        let tables = CostTables::build(&g, ConfigRule::new(4), &MachineSpec::test_machine());
        let base = Search::new(&g).tables(&tables).run()
            .expect_found("generate-seq").cost;
        let naive = naive_best_strategy(&g, &tables, SearchBudget::default())
            .expect_found("naive").cost;
        let rnd = Search::new(&g).tables(&tables)
            .ordering(OrderingKind::Random { seed })
            .run().expect_found("random").cost;
        let tol = 1e-9 * base.abs().max(1.0);
        prop_assert!((base - naive).abs() <= tol);
        prop_assert!((base - rnd).abs() <= tol);
    }

    /// Theorem 2 on random DAGs: maintained sets equal first-principles
    /// dependent sets, under the GenerateSeq ordering.
    #[test]
    fn theorem2_on_random_dags(dag in arb_dag(10)) {
        let g = build_graph(&dag);
        let (order, maintained) = generate_seq_with_sets(&g);
        let s = VertexStructure::build(&g, &order, ConnectedSetMode::Exact);
        for (i, m) in maintained.iter().enumerate() {
            prop_assert_eq!(m, s.dependent_set(i));
        }
    }

    /// Wherever OptCNN's graph reduction applies, it must agree exactly
    /// with the DP; when it reports an irreducible core, the DP must still
    /// solve the graph (§VI).
    #[test]
    fn optcnn_agrees_with_dp_when_reducible(dag in arb_dag(9)) {
        let g = build_graph(&dag);
        let tables = CostTables::build(&g, ConfigRule::new(4), &MachineSpec::test_machine());
        let dp = Search::new(&g).tables(&tables).run().expect_found("dp");
        match optcnn_search(&g, &tables) {
            ReductionOutcome::Reduced { cost, config_ids, .. } => {
                prop_assert!((cost - dp.cost).abs() <= 1e-9 * dp.cost.abs().max(1.0),
                    "optcnn {} vs dp {}", cost, dp.cost);
                let eval = tables.evaluate_ids(&g, &config_ids);
                prop_assert!((eval - cost).abs() <= 1e-9 * cost.abs().max(1.0));
            }
            ReductionOutcome::Irreducible { remaining } => {
                prop_assert!(remaining.len() > 1);
            }
        }
    }

    /// The DP result lower-bounds every random strategy.
    #[test]
    fn dp_lower_bounds_samples(dag in arb_dag(9), seed in 0u64..1000) {
        let g = build_graph(&dag);
        let tables = CostTables::build(&g, ConfigRule::new(8), &MachineSpec::test_machine());
        let r = Search::new(&g).tables(&tables).run().expect_found("dp");
        for cost in random_strategy_costs(&g, &tables, seed, 25) {
            prop_assert!(r.cost <= cost + 1e-9 * cost.abs().max(1.0));
        }
    }

    /// Dependent sets under GenerateSeq never exceed the graph's maximum
    /// degree bound and are monotone sane.
    #[test]
    fn dependent_sets_are_bounded(dag in arb_dag(10)) {
        let g = build_graph(&dag);
        let (order, _) = generate_seq_with_sets(&g);
        let sizes = dependent_set_sizes(&g, &order);
        prop_assert_eq!(sizes.len(), g.len());
        // last position of a connected graph has an empty dependent set;
        // in general every component root does.
        let s = VertexStructure::build(&g, &order, ConnectedSetMode::Exact);
        for &root in s.roots() {
            prop_assert!(s.dependent_set(root).is_empty());
        }
    }

    /// Configuration enumeration: products within bounds, splits within
    /// extents, all-devices rule tight when reachable.
    #[test]
    fn config_enumeration_invariants(
        b in prop::sample::select(vec![8u64, 32, 128]),
        n in prop::sample::select(vec![4u64, 64, 1000]),
        c in prop::sample::select(vec![2u64, 16, 512]),
        p in prop::sample::select(vec![2u32, 4, 8, 16]),
    ) {
        let node = fc_node("t", b, n, c, 0);
        let cfgs = enumerate_configs(&node, &ConfigRule::new(p));
        prop_assert!(!cfgs.is_empty());
        let max_product = cfgs.iter().map(Config::product).max().unwrap();
        for cfg in &cfgs {
            prop_assert!(cfg.product() <= u64::from(p));
            prop_assert_eq!(cfg.product(), max_product); // all-devices rule
            for (i, d) in node.iter_space.iter().enumerate() {
                prop_assert!(u64::from(cfg.split(i)) <= d.size.max(1));
            }
        }
        // relaxed rule is a superset containing all-ones
        let relaxed = enumerate_configs(&node, &ConfigRule::new(p).allow_idle());
        prop_assert!(relaxed.len() >= cfgs.len());
        prop_assert!(relaxed.contains(&Config::ones(3)));
    }

    /// Collective volume formulas are monotone in group size and bounded.
    #[test]
    fn collective_bounds(bytes in 1.0f64..1e9, g1 in 2u32..64) {
        let ar = all_reduce_bytes(bytes, g1);
        prop_assert!(ar > 0.0 && ar < 2.0 * bytes);
        prop_assert!(ar >= all_gather_bytes(bytes, g1));
        prop_assert!(all_reduce_bytes(bytes, g1 + 1) > ar);
    }

    /// Structural interning is invisible: on any random DAG the interned
    /// tables return bit-identical `layer_cost` / `edge_cost` entries to a
    /// build with interning disabled.
    #[test]
    fn interned_tables_are_bit_identical(dag in arb_dag(9)) {
        let g = build_graph(&dag);
        let machine = MachineSpec::test_machine();
        // intern_min_nodes: 0 — random DAGs here are below the default size
        // gate, and this test is specifically about interning correctness.
        let interned = CostTables::build_with(
            &g,
            ConfigRule::new(8),
            &machine,
            &TableOptions { intern: true, intern_min_nodes: 0, parallel: false },
        );
        let plain = CostTables::build_with(
            &g,
            ConfigRule::new(8),
            &machine,
            &TableOptions { intern: false, parallel: false, ..TableOptions::default() },
        );
        for v in g.node_ids() {
            prop_assert_eq!(interned.k(v), plain.k(v));
            prop_assert_eq!(interned.configs_of(v), plain.configs_of(v));
            for c in 0..interned.k(v) as u16 {
                prop_assert_eq!(
                    interned.layer_cost(v, c).to_bits(),
                    plain.layer_cost(v, c).to_bits(),
                    "layer cost differs at node {:?} config {}", v, c
                );
            }
        }
        for e in 0..g.edge_count() {
            let e = EdgeId(e as u32);
            let (u, v) = {
                let edge = g.edge(e);
                (edge.src, edge.dst)
            };
            for cu in 0..interned.k(u) as u16 {
                for cv in 0..interned.k(v) as u16 {
                    prop_assert_eq!(
                        interned.edge_cost(e, cu, cv).to_bits(),
                        plain.edge_cost(e, cu, cv).to_bits(),
                        "edge cost differs at edge {:?} ({}, {})", e, cu, cv
                    );
                }
            }
        }
    }

    /// Exact dominance pruning is invisible to the search: on any random
    /// DAG the pruned DP returns the same optimal cost (bit-identical) and
    /// a strategy that, after id back-mapping, is valid in the original
    /// configuration space and achieves that optimum.
    #[test]
    fn pruned_search_matches_unpruned(dag in arb_dag(8), p in prop::sample::select(vec![2u32, 4, 8])) {
        let g = build_graph(&dag);
        let tables = CostTables::build(&g, ConfigRule::new(p), &MachineSpec::test_machine());
        let plain = Search::new(&g).tables(&tables).run()
            .expect_found("unpruned");
        let pruned = Search::new(&g).tables(&tables)
            .pruning(PruneOptions::default())
            .run().expect_found("pruned");
        prop_assert_eq!(
            pruned.cost.to_bits(), plain.cost.to_bits(),
            "pruned {} vs unpruned {}", pruned.cost, plain.cost
        );
        // The back-mapped ids are valid in the original tables...
        for v in g.node_ids() {
            prop_assert!((pruned.config_ids[v.index()] as usize) < tables.k(v));
        }
        // ...and evaluate to the optimum there.
        let eval = tables.evaluate_ids(&g, &pruned.config_ids);
        prop_assert!((eval - plain.cost).abs() <= 1e-9 * plain.cost.abs().max(1.0),
            "back-mapped strategy {} vs optimum {}", eval, plain.cost);
    }

    /// Pruning never empties any per-node configuration list, and every
    /// survivor is one of the original configurations.
    #[test]
    fn pruning_keeps_every_config_list_nonempty(dag in arb_dag(9), p in prop::sample::select(vec![2u32, 4, 8, 16])) {
        let g = build_graph(&dag);
        let tables = CostTables::build(&g, ConfigRule::new(p), &MachineSpec::test_machine());
        let pruned = PrunedTables::build(&g, &tables, &PruneOptions::default());
        for v in g.node_ids() {
            let kept = pruned.kept_ids(v);
            prop_assert!(!kept.is_empty(), "C({:?}) emptied", v);
            prop_assert!(kept.len() <= tables.k(v));
            prop_assert_eq!(kept.len(), pruned.tables().k(v));
            for (new_id, &orig) in kept.iter().enumerate() {
                prop_assert!((orig as usize) < tables.k(v));
                prop_assert_eq!(
                    pruned.tables().config(v, new_id as u16),
                    tables.config(v, orig)
                );
            }
        }
    }

    /// The sequential strategy's cost is exactly the model FLOPs, for any
    /// random DAG (no communication on one device).
    #[test]
    fn sequential_cost_is_flops(dag in arb_dag(8)) {
        let g = build_graph(&dag);
        let s = ParallelStrategy::sequential(&g);
        let cost = evaluate(&g, &s, 1234.5);
        prop_assert!((cost - g.total_step_flops()).abs() <= 1e-9 * cost.abs().max(1.0));
    }
}
