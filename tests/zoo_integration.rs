//! End-to-end search + simulation across the *entire* model zoo — every
//! builder, not just the four paper benchmarks.

use pase::core::{Search, SearchBudget};
use pase::cost::{evaluate, ConfigRule, CostTables, MachineSpec};
use pase::graph::Graph;
use pase::models::*;
use pase::sim::{simulate_step, SimOptions, Topology};
use std::time::Duration;

fn zoo() -> Vec<(&'static str, Graph)> {
    vec![
        ("alexnet", alexnet(&AlexNetConfig::tiny())),
        ("inception", inception_v3(&InceptionConfig::tiny())),
        ("rnnlm", rnnlm(&RnnlmConfig::tiny())),
        ("rnnlm-unrolled", rnnlm_unrolled(&RnnlmConfig::tiny())),
        ("gnmt", gnmt(&GnmtConfig::tiny())),
        ("transformer", transformer(&TransformerConfig::tiny())),
        ("densenet", densenet(&DenseNetConfig::tiny())),
        ("resnet", resnet(&ResNetConfig::tiny())),
        ("vgg", vgg16(&VggConfig::tiny())),
        ("bert", bert_encoder(&BertConfig::tiny())),
        ("mlp", mlp(&MlpConfig::default())),
    ]
}

#[test]
fn every_zoo_model_searches_and_simulates() {
    let machine = MachineSpec::gtx1080ti();
    let p = 4;
    let topo = Topology::cluster(machine.clone(), p).unwrap();
    for (name, g) in zoo() {
        validate_edge_tensors(&g, 0.25).unwrap_or_else(|e| panic!("{name}: {e}"));
        let tables = CostTables::build(&g, ConfigRule::new(p), &machine);
        let budget = SearchBudget {
            max_table_entries: 1 << 26,
            max_time: Duration::from_secs(120),
        };
        let outcome = Search::new(&g)
            .tables(&tables)
            .budget(budget)
            .run()
            .into_outcome();
        let r = match outcome.found() {
            Some(r) => r.clone(),
            None => panic!("{name}: search {}", outcome.tag()),
        };
        let s = tables.ids_to_strategy(&r.config_ids);
        // DP result consistent with the direct cost function...
        let direct = evaluate(&g, &s, machine.flop_byte_ratio());
        assert!(
            (direct - r.cost).abs() <= 1e-6 * r.cost.abs().max(1.0),
            "{name}: {direct} vs {}",
            r.cost
        );
        // ... and executable on the simulator.
        let rep = simulate_step(&g, &s, &topo, &SimOptions::default());
        assert!(
            rep.step_seconds.is_finite() && rep.step_seconds > 0.0,
            "{name}"
        );
    }
}

#[test]
fn zoo_models_have_distinct_structures() {
    // Guard against builders accidentally collapsing into each other.
    let sizes: Vec<(usize, usize)> = zoo()
        .iter()
        .map(|(_, g)| (g.len(), g.edge_count()))
        .collect();
    let mut unique = sizes.clone();
    unique.sort_unstable();
    unique.dedup();
    assert!(
        unique.len() >= sizes.len() - 1,
        "too many identical shapes: {sizes:?}"
    );
}

#[test]
fn tiny_and_paper_configs_scale_consistently() {
    // paper-scale graphs are structurally identical to the tiny variants
    // (same node counts) for the fixed-architecture models.
    assert_eq!(
        alexnet(&AlexNetConfig::tiny()).len(),
        alexnet(&AlexNetConfig::paper()).len()
    );
    assert_eq!(
        inception_v3(&InceptionConfig::tiny()).len(),
        inception_v3(&InceptionConfig::paper()).len()
    );
    assert_eq!(
        vgg16(&VggConfig::tiny()).len(),
        vgg16(&VggConfig::paper()).len()
    );
    assert_eq!(
        gnmt(&GnmtConfig::tiny()).len(),
        gnmt(&GnmtConfig::paper()).len()
    );
}
