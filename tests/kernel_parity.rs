//! Kernel parity: `DpKernel::Tiled` must be **bit-identical** to
//! `DpKernel::Scalar` — same optimal cost (compared via `to_bits`, not a
//! tolerance) and the same per-node configuration ids — on random DAGs and
//! on all four paper benchmarks across device counts. This is the contract
//! that makes the tiled microkernel a pure performance change: the packed
//! panels preserve the scalar path's exact f64 addition order (layer cost,
//! then later edges in order, then children in order), blocked `min` over
//! non-NaN costs equals sequential `min`, and the separate argmin recovery
//! pass returns the same first-improving index the scalar loop tracks
//! inline.
//!
//! The sweep deliberately covers ragged shapes: per-vertex config counts
//! that are not multiples of the kernel's LANES blocking (so remainder
//! lanes run), chunk boundaries that split innermost-digit runs, and
//! p = 64 cells whose tables span multiple `CHUNK`-sized fill chunks.

use pase::core::{DpKernel, Search, SearchOutcome};
use pase::cost::{ConfigRule, CostTables, MachineSpec};
use pase::graph::{Graph, GraphBuilder, IterDim, Node, NodeId, OpKind, TensorRef};
use pase::models::Benchmark;
use proptest::prelude::*;

fn fc_node(name: &str, batch: u64, out_w: u64, in_w: u64, ins: usize) -> Node {
    let dims = vec![
        IterDim::new("b", batch, pase::graph::DimRole::Batch),
        IterDim::new("n", out_w, pase::graph::DimRole::Param),
        IterDim::new("c", in_w, pase::graph::DimRole::Reduction),
    ];
    Node {
        name: name.into(),
        op: OpKind::FullyConnected,
        iter_space: dims,
        inputs: (0..ins)
            .map(|_| TensorRef::new(vec![0, 2], vec![batch, in_w]))
            .collect(),
        output: TensorRef::new(vec![0, 1], vec![batch, out_w]),
        params: vec![TensorRef::new(vec![1, 2], vec![out_w, in_w])],
    }
}

/// A random chain-with-skips DAG of fully-connected layers (the same
/// generator family as `parity.rs`): skip edges exercise multi-child
/// dependent sets, i.e. the kernel's strided-gather child accumulation.
fn random_graph(widths: &[u64], skips: &[bool]) -> Graph {
    let mut b = GraphBuilder::new();
    let batch = 32;
    let mut ids: Vec<NodeId> = Vec::new();
    for (i, &w) in widths.iter().enumerate() {
        let in_w = if i == 0 { 16 } else { widths[i - 1] };
        let extra = i >= 2 && skips[i % skips.len()];
        let node = fc_node(
            &format!("n{i}"),
            batch,
            w,
            in_w,
            usize::from(i > 0) + usize::from(extra),
        );
        ids.push(b.add_node(node));
    }
    for i in 1..widths.len() {
        b.connect(ids[i - 1], ids[i]);
        if i >= 2 && skips[i % skips.len()] {
            b.connect(ids[i - 2], ids[i]);
        }
    }
    b.build().expect("kernel-parity graph builds")
}

fn run(g: &Graph, tables: &CostTables, kernel: DpKernel, parallel: bool) -> SearchOutcome {
    Search::new(g)
        .tables(tables)
        .dp_kernel(kernel)
        .parallel(parallel)
        .run()
        .into_outcome()
}

/// Run both kernels (in both the rayon and the sequential scheduler, which
/// take different code paths to the same `fill_chunk` call) and require
/// bit-identical results.
fn assert_kernel_parity(label: &str, g: &Graph, tables: &CostTables) {
    let scalar = run(g, tables, DpKernel::Scalar, true);
    let s = scalar
        .found()
        .unwrap_or_else(|| panic!("{label}: scalar search failed"));
    for parallel in [true, false] {
        let tiled = run(g, tables, DpKernel::Tiled, parallel);
        let t = tiled
            .found()
            .unwrap_or_else(|| panic!("{label}: tiled search failed (parallel={parallel})"));
        assert_eq!(
            s.cost.to_bits(),
            t.cost.to_bits(),
            "{label} (parallel={parallel}): tiled cost {} != scalar cost {}",
            t.cost,
            s.cost
        );
        assert_eq!(
            s.config_ids, t.config_ids,
            "{label} (parallel={parallel}): tiled strategy differs from scalar"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Tiled == scalar on random DAGs. Widths of 16/24/48 give per-vertex
    /// config counts (and hence table sizes) that are rarely multiples of
    /// the LANES = 8 blocking, so ragged remainder lanes run in almost
    /// every case.
    #[test]
    fn tiled_matches_scalar_on_random_dags(
        widths in prop::collection::vec(prop::sample::select(vec![16u64, 24, 32, 48]), 2..7),
        skips in prop::collection::vec(prop::sample::select(vec![false, true]), 3..=3),
        p in prop::sample::select(vec![2u32, 4, 8]),
    ) {
        let g = random_graph(&widths, &skips);
        let tables = CostTables::build(&g, ConfigRule::new(p), &MachineSpec::test_machine());
        assert_kernel_parity("random dag", &g, &tables);
    }
}

/// The ISSUE acceptance criterion: tiled == scalar on AlexNet,
/// InceptionV3, RNNLM, and Transformer at p ∈ {8, 32, 64} (tiny variants
/// keep the debug-mode DP feasible, as in `parity.rs`; the p = 64 cells
/// still produce DP tables larger than one fill chunk, so chunk-boundary
/// odometer re-seeding is exercised too).
#[test]
fn tiled_matches_scalar_on_paper_benchmarks() {
    let machine = MachineSpec::test_machine();
    for bench in Benchmark::all() {
        let graph = bench.build_tiny();
        for p in [8u32, 32, 64] {
            let tables = CostTables::build(&graph, ConfigRule::new(p), &machine);
            let label = format!("{} p={p}", bench.name());
            assert_kernel_parity(&label, &graph, &tables);
        }
    }
}
