//! Frontier parity: the Pareto-frontier DP must be a **pure
//! generalization** of the scalar DP. Two contracts, checked under both
//! schedulers (rayon and sequential) and both DP kernels:
//!
//! (a) the frontier's min-time point is bit-identical (`to_bits`, not a
//!     tolerance) to the single-objective optimum — the frontier fill
//!     preserves the scalar path's exact f64 addition order, so turning
//!     the feature on cannot change the answer it subsumes;
//! (b) a `max_memory_bytes` search answers with exactly the cheapest
//!     frontier point that fits the cap, and an impossible cap reports
//!     `Infeasible` carrying the frontier's true memory floor.
//!
//! Covered on random chain-with-skips DAGs (the same generator family as
//! `parity.rs` / `kernel_parity.rs`) and on all four paper benchmarks at
//! p ∈ {8, 32, 64} — the ISSUE acceptance grid.

use pase::core::{DpKernel, Search, SearchOutcome, StrategyFrontier};
use pase::cost::{ConfigRule, CostTables, MachineSpec};
use pase::graph::{Graph, GraphBuilder, IterDim, Node, NodeId, OpKind, TensorRef};
use pase::models::Benchmark;
use proptest::prelude::*;

fn fc_node(name: &str, batch: u64, out_w: u64, in_w: u64, ins: usize) -> Node {
    let dims = vec![
        IterDim::new("b", batch, pase::graph::DimRole::Batch),
        IterDim::new("n", out_w, pase::graph::DimRole::Param),
        IterDim::new("c", in_w, pase::graph::DimRole::Reduction),
    ];
    Node {
        name: name.into(),
        op: OpKind::FullyConnected,
        iter_space: dims,
        inputs: (0..ins)
            .map(|_| TensorRef::new(vec![0, 2], vec![batch, in_w]))
            .collect(),
        output: TensorRef::new(vec![0, 1], vec![batch, out_w]),
        params: vec![TensorRef::new(vec![1, 2], vec![out_w, in_w])],
    }
}

/// A random chain-with-skips DAG of fully-connected layers; skip edges
/// exercise multi-child dependent sets, where per-state frontiers merge
/// across more than one downstream consumer.
fn random_graph(widths: &[u64], skips: &[bool]) -> Graph {
    let mut b = GraphBuilder::new();
    let batch = 32;
    let mut ids: Vec<NodeId> = Vec::new();
    for (i, &w) in widths.iter().enumerate() {
        let in_w = if i == 0 { 16 } else { widths[i - 1] };
        let extra = i >= 2 && skips[i % skips.len()];
        let node = fc_node(
            &format!("n{i}"),
            batch,
            w,
            in_w,
            usize::from(i > 0) + usize::from(extra),
        );
        ids.push(b.add_node(node));
    }
    for i in 1..widths.len() {
        b.connect(ids[i - 1], ids[i]);
        if i >= 2 && skips[i % skips.len()] {
            b.connect(ids[i - 2], ids[i]);
        }
    }
    b.build().expect("frontier-parity graph builds")
}

fn frontier_run(
    g: &Graph,
    tables: &CostTables,
    kernel: DpKernel,
    parallel: bool,
    max_memory: Option<u64>,
) -> (SearchOutcome, Option<StrategyFrontier>) {
    let mut search = Search::new(g)
        .tables(tables)
        .dp_kernel(kernel)
        .parallel(parallel)
        .frontier();
    if let Some(bytes) = max_memory {
        search = search.max_memory_bytes(bytes);
    }
    let run = search.run();
    let frontier = run.frontier().cloned();
    (run.into_outcome(), frontier)
}

/// Contract (b) for one budget: the answer is the cheapest frontier point
/// that fits, or `Infeasible` naming the frontier's memory floor.
fn assert_budget_answer(
    label: &str,
    g: &Graph,
    tables: &CostTables,
    kernel: DpKernel,
    parallel: bool,
    frontier: &StrategyFrontier,
    budget: u64,
) {
    let (outcome, _) = frontier_run(g, tables, kernel, parallel, Some(budget));
    match frontier.cheapest_within(budget) {
        Some(expected) => {
            let r = outcome.found().unwrap_or_else(|| {
                panic!(
                    "{label}: budget {budget} should be feasible, got {}",
                    outcome.tag()
                )
            });
            assert_eq!(
                r.cost.to_bits(),
                expected.cost.to_bits(),
                "{label}: budget {budget} answered cost {} but the cheapest \
                 fitting frontier point costs {}",
                r.cost,
                expected.cost
            );
            assert_eq!(
                r.stats.peak_strategy_bytes, expected.memory_bytes,
                "{label}: budget {budget} peak memory disagrees with the frontier point"
            );
            assert!(
                r.stats.peak_strategy_bytes <= budget,
                "{label}: answer violates its own budget"
            );
        }
        None => match outcome {
            SearchOutcome::Infeasible {
                min_memory_bytes, ..
            } => assert_eq!(
                min_memory_bytes,
                frontier.min_memory_bytes(),
                "{label}: infeasible floor disagrees with the frontier"
            ),
            other => panic!(
                "{label}: budget {budget} fits no frontier point but the search \
                 answered {}",
                other.tag()
            ),
        },
    }
}

/// Both contracts over the given (kernel × scheduler) combinations.
/// `probes` sets how much of contract (b) runs — every budget probe pays
/// a full frontier fill, so the heaviest cells dial it down:
/// 0 = contract (a) only; 1 = the two boundary regimes (the memory floor
/// and one impossible cap); 2 = additionally every exact point memory
/// (each cap that fits point k but not k−1 must answer point k).
fn assert_frontier_parity(
    label: &str,
    g: &Graph,
    tables: &CostTables,
    combos: &[(DpKernel, bool)],
    probes: u8,
) {
    for &(kernel, parallel) in combos {
        {
            let label = format!("{label} ({kernel:?}, parallel={parallel})");
            let scalar = Search::new(g)
                .tables(tables)
                .dp_kernel(kernel)
                .parallel(parallel)
                .run()
                .into_outcome();
            let s = scalar
                .found()
                .unwrap_or_else(|| panic!("{label}: scalar search failed"));

            let (outcome, frontier) = frontier_run(g, tables, kernel, parallel, None);
            let f = frontier.unwrap_or_else(|| panic!("{label}: no frontier"));
            let r = outcome
                .found()
                .unwrap_or_else(|| panic!("{label}: frontier search failed"));

            // (a) min-time parity, bit for bit — and the unconstrained
            // search selects exactly that point.
            assert_eq!(
                f.min_time().cost.to_bits(),
                s.cost.to_bits(),
                "{label}: frontier min-time {} != scalar optimum {}",
                f.min_time().cost,
                s.cost
            );
            assert_eq!(
                r.cost.to_bits(),
                s.cost.to_bits(),
                "{label}: unconstrained frontier answer differs from the scalar optimum"
            );
            assert_eq!(
                r.stats.frontier_len,
                f.len(),
                "{label}: stats disagree with the returned frontier"
            );

            // The frontier itself is well-formed: cost strictly ascending,
            // memory strictly descending (dominance-pruned).
            for w in f.points().windows(2) {
                assert!(
                    w[0].cost < w[1].cost && w[0].memory_bytes > w[1].memory_bytes,
                    "{label}: frontier is not dominance-pruned: {w:?}"
                );
            }

            // (b) the two boundary regimes: only the floor fits, and
            // nothing fits.
            if probes >= 1 {
                let floor = f.min_memory_bytes();
                assert_budget_answer(&label, g, tables, kernel, parallel, &f, floor);
                if floor > 0 {
                    assert_budget_answer(&label, g, tables, kernel, parallel, &f, floor - 1);
                }
            }
            if probes >= 2 {
                for pt in f.points() {
                    assert_budget_answer(&label, g, tables, kernel, parallel, &f, pt.memory_bytes);
                }
            }
        }
    }
}

/// The `width == 0` exactness contract: with thinning disabled the
/// tiled kernel's batch prunes are off, and the two kernels must produce
/// **set-identical** frontiers — bitwise times, equal memories, point
/// for point.
fn assert_kernels_set_identical_exact(label: &str, g: &Graph, tables: &CostTables, parallel: bool) {
    let run = |kernel| {
        Search::new(g)
            .tables(tables)
            .dp_kernel(kernel)
            .parallel(parallel)
            .frontier_width(0)
            .frontier()
            .run()
            .frontier()
            .cloned()
            .unwrap_or_else(|| panic!("{label}: no width-0 frontier"))
    };
    let a = run(DpKernel::Scalar);
    let b = run(DpKernel::Tiled);
    assert_eq!(
        a.len(),
        b.len(),
        "{label}: width-0 frontier lengths differ ({} vs {})",
        a.len(),
        b.len()
    );
    for (x, y) in a.points().iter().zip(b.points()) {
        assert_eq!(
            x.cost.to_bits(),
            y.cost.to_bits(),
            "{label}: width-0 frontier times differ ({} vs {})",
            x.cost,
            y.cost
        );
        assert_eq!(
            x.memory_bytes, y.memory_bytes,
            "{label}: width-0 frontier memories differ"
        );
    }
}

/// At the default (width-capped) frontier, the tiled kernel's batch
/// prunes keep two things exact besides the min-time bits of contract
/// (a): the frontier's memory floor, and the max-memory endpoint's
/// membership. Both kernels must agree on the floor bit for bit.
fn assert_kernels_share_memory_floor(label: &str, g: &Graph, tables: &CostTables, parallel: bool) {
    let floor = |kernel| {
        frontier_run(g, tables, kernel, parallel, None)
            .1
            .unwrap_or_else(|| panic!("{label}: no frontier"))
            .min_memory_bytes()
    };
    assert_eq!(
        floor(DpKernel::Scalar),
        floor(DpKernel::Tiled),
        "{label}: kernels disagree on the frontier's memory floor"
    );
}

const ALL_COMBOS: [(DpKernel, bool); 4] = [
    (DpKernel::Scalar, false),
    (DpKernel::Scalar, true),
    (DpKernel::Tiled, false),
    (DpKernel::Tiled, true),
];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Frontier == scalar on random DAGs under the full
    /// (kernel × scheduler) grid, with budget answers equal to the
    /// cheapest fitting frontier point at every exact point memory.
    #[test]
    fn frontier_matches_scalar_on_random_dags(
        widths in prop::collection::vec(prop::sample::select(vec![16u64, 24, 32, 48]), 2..6),
        skips in prop::collection::vec(prop::sample::select(vec![false, true]), 3..=3),
        p in prop::sample::select(vec![2u32, 4, 8]),
    ) {
        let g = random_graph(&widths, &skips);
        let tables = CostTables::build(&g, ConfigRule::new(p), &MachineSpec::test_machine());
        assert_frontier_parity("random dag", &g, &tables, &ALL_COMBOS, 2);
        for parallel in [false, true] {
            let label = format!("random dag (parallel={parallel})");
            assert_kernels_set_identical_exact(&label, &g, &tables, parallel);
            assert_kernels_share_memory_floor(&label, &g, &tables, parallel);
        }
    }
}

/// The ISSUE acceptance grid: frontier min-time == scalar optimum on
/// AlexNet, InceptionV3, RNNLM, and Transformer at p ∈ {8, 32, 64}
/// (tiny variants keep the debug-mode DP feasible, as in `parity.rs`).
/// Each cell runs two of the four (kernel × scheduler) combinations,
/// rotated so every combination covers every benchmark and every `p`
/// across the grid while keeping debug-mode wall time near
/// `kernel_parity`'s.
///
/// InceptionV3's dense concat blocks make its frontier fill by far the
/// grid's most expensive (tens of seconds per fill in debug at p ≥ 32),
/// so debug builds cover it at p = 8 with one combination and leave the
/// full InceptionV3 column to release runs — `bench_search` asserts
/// min-time bit-parity on every grid cell in release on every tier-1 run.
#[test]
fn frontier_matches_scalar_on_paper_benchmarks() {
    let machine = MachineSpec::test_machine();
    for (b, bench) in Benchmark::all().iter().enumerate() {
        let graph = bench.build_tiny();
        for (i, p) in [8u32, 32, 64].into_iter().enumerate() {
            let inception = matches!(bench, Benchmark::InceptionV3);
            if cfg!(debug_assertions) && inception && p > 8 {
                continue;
            }
            let tables = CostTables::build(&graph, ConfigRule::new(p), &machine);
            let label = format!("{} p={p}", bench.name());
            let rot = (b + i) % 2;
            let combos = [ALL_COMBOS[rot], ALL_COMBOS[2 + (1 - rot)]];
            let combos: &[(DpKernel, bool)] = if cfg!(debug_assertions) && inception {
                &combos[..1]
            } else {
                &combos
            };
            assert_frontier_parity(&label, &graph, &tables, combos, 1);
            // The cross-kernel exactness contracts, on the cheapest cell
            // of each model's column (width-0 fills disable thinning, so
            // they are the grid's most expensive runs).
            if p == 8 && !(cfg!(debug_assertions) && inception) {
                assert_kernels_set_identical_exact(&label, &graph, &tables, b % 2 == 0);
                assert_kernels_share_memory_floor(&label, &graph, &tables, b % 2 == 1);
            }
        }
    }
}
