//! The tentpole's parity anchor: a **flat single-axis [`DeviceMesh`]**
//! must reproduce the scalar machine model **bit-identically** — not
//! within a tolerance. Two layers of assertion:
//!
//! * *table level*: every layer-cost entry equals the independent scalar
//!   reference [`layer_cost`] and every edge entry equals the scalar
//!   [`transfer_cost`], compared via `to_bits` (the scalar functions are
//!   deliberately untouched by the mesh refactor so they stay a fixed
//!   reference);
//! * *search level*: the DP over flat-mesh tables returns the same cost
//!   bits and the same strategy under both DP kernels and both
//!   schedulers (wavefront-parallel and sequential).
//!
//! Covered on proptest-random skip DAGs and on all four paper benchmarks
//! at p ∈ {8, 32, 64}.

use pase::core::{DpKernel, Search, SearchOutcome};
use pase::cost::{
    layer_cost, transfer_cost, ConfigRule, CostTables, DeviceMesh, MachineSpec, TableOptions,
};
use pase::graph::{Graph, GraphBuilder, IterDim, Node, NodeId, OpKind, TensorRef};
use pase::models::Benchmark;
use proptest::prelude::*;

fn fc_node(name: &str, batch: u64, out_w: u64, in_w: u64, ins: usize) -> Node {
    let dims = vec![
        IterDim::new("b", batch, pase::graph::DimRole::Batch),
        IterDim::new("n", out_w, pase::graph::DimRole::Param),
        IterDim::new("c", in_w, pase::graph::DimRole::Reduction),
    ];
    Node {
        name: name.into(),
        op: OpKind::FullyConnected,
        iter_space: dims,
        inputs: (0..ins)
            .map(|_| TensorRef::new(vec![0, 2], vec![batch, in_w]))
            .collect(),
        output: TensorRef::new(vec![0, 1], vec![batch, out_w]),
        params: vec![TensorRef::new(vec![1, 2], vec![out_w, in_w])],
    }
}

fn random_graph(widths: &[u64], skips: &[bool]) -> Graph {
    let mut b = GraphBuilder::new();
    let batch = 32;
    let mut ids: Vec<NodeId> = Vec::new();
    for (i, &w) in widths.iter().enumerate() {
        let in_w = if i == 0 { 16 } else { widths[i - 1] };
        let extra = i >= 2 && skips[i % skips.len()];
        let node = fc_node(
            &format!("n{i}"),
            batch,
            w,
            in_w,
            usize::from(i > 0) + usize::from(extra),
        );
        ids.push(b.add_node(node));
    }
    for i in 1..widths.len() {
        b.connect(ids[i - 1], ids[i]);
        if i >= 2 && skips[i % skips.len()] {
            b.connect(ids[i - 2], ids[i]);
        }
    }
    b.build().expect("mesh parity graph builds")
}

/// Every table entry of a flat-mesh build must be bitwise equal to the
/// scalar reference model at `r = F/B`.
fn assert_tables_match_scalar(label: &str, graph: &Graph, tables: &CostTables, m: &MachineSpec) {
    let r = m.flop_byte_ratio();
    for (id, node) in graph.iter() {
        for (c, cfg) in tables.configs_of(id).iter().enumerate() {
            let got = tables.layer_cost(id, c as u16);
            let want = layer_cost(node, cfg, r);
            assert_eq!(
                got.to_bits(),
                want.to_bits(),
                "{label}: layer cost of {} config {c} is {got}, scalar model says {want}",
                node.name
            );
        }
    }
    for (eid, e) in graph.edges().iter().enumerate() {
        let u = graph.node(e.src);
        let v = graph.node(e.dst);
        for (cu, ucfg) in tables.configs_of(e.src).iter().enumerate() {
            for (cv, vcfg) in tables.configs_of(e.dst).iter().enumerate() {
                let got = tables.edge_cost(pase::graph::EdgeId(eid as u32), cu as u16, cv as u16);
                let want = transfer_cost(u, ucfg, v, e.dst_slot as usize, vcfg, r);
                assert_eq!(
                    got.to_bits(),
                    want.to_bits(),
                    "{label}: edge {}->{} cost ({cu},{cv}) is {got}, scalar model says {want}",
                    u.name,
                    v.name
                );
            }
        }
    }
}

/// Run the DP over the given tables under every kernel × scheduler combo
/// and assert all four outcomes are bit-identical. Returns one of them.
fn assert_dp_combos_agree(label: &str, graph: &Graph, tables: &CostTables) -> SearchOutcome {
    let mut reference: Option<SearchOutcome> = None;
    for kernel in [DpKernel::Scalar, DpKernel::Tiled] {
        for parallel in [true, false] {
            let outcome = Search::new(graph)
                .tables(tables)
                .dp_kernel(kernel)
                .parallel(parallel)
                .run()
                .into_outcome();
            let got = outcome
                .found()
                .unwrap_or_else(|| panic!("{label}: {kernel:?}/parallel={parallel} failed"));
            if let Some(r) = &reference {
                let want = r.found().unwrap();
                assert_eq!(
                    want.cost.to_bits(),
                    got.cost.to_bits(),
                    "{label}: {kernel:?}/parallel={parallel} cost diverges"
                );
                assert_eq!(
                    want.config_ids, got.config_ids,
                    "{label}: {kernel:?}/parallel={parallel} strategy diverges"
                );
            } else {
                reference = Some(outcome);
            }
        }
    }
    reference.unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Flat mesh == scalar model on random skip DAGs, at table level and
    /// through the DP under every kernel/scheduler combination.
    #[test]
    fn flat_mesh_is_bit_identical_on_random_dags(
        widths in prop::collection::vec(prop::sample::select(vec![16u64, 32, 64]), 2..7),
        skips in prop::collection::vec(prop::sample::select(vec![false, true]), 3..=3),
        p in prop::sample::select(vec![2u32, 4, 8]),
    ) {
        let g = random_graph(&widths, &skips);
        let m = MachineSpec::test_machine();
        let tables = CostTables::build_mesh(
            &g,
            ConfigRule::new(p),
            &DeviceMesh::flat(&m),
            &TableOptions::default(),
            None,
        );
        assert_tables_match_scalar("random dag", &g, &tables, &m);
        assert_dp_combos_agree("random dag", &g, &tables);
    }
}

/// The twelve benchmark cells of the acceptance criterion: AlexNet,
/// InceptionV3, RNNLM, Transformer × p ∈ {8, 32, 64} (tiny variants keep
/// the debug-mode DP feasible).
#[test]
fn flat_mesh_is_bit_identical_on_paper_benchmarks() {
    let m = MachineSpec::gtx1080ti();
    for bench in Benchmark::all() {
        let graph = bench.build_tiny();
        for p in [8u32, 32, 64] {
            let label = format!("{} p={p}", bench.name());
            let tables = CostTables::build_mesh(
                &graph,
                ConfigRule::new(p),
                &DeviceMesh::flat(&m),
                &TableOptions::default(),
                None,
            );
            assert_tables_match_scalar(&label, &graph, &tables, &m);
            let outcome = assert_dp_combos_agree(&label, &graph, &tables);
            // The scalar convenience constructor must route through the
            // exact same flat mesh: identical tables, identical optimum.
            let scalar_tables = CostTables::build(&graph, ConfigRule::new(p), &m);
            let scalar = Search::new(&graph)
                .tables(&scalar_tables)
                .run()
                .into_outcome();
            assert_eq!(
                outcome.found().unwrap().cost.to_bits(),
                scalar.found().unwrap().cost.to_bits(),
                "{label}: CostTables::build diverges from explicit flat mesh"
            );
            assert_eq!(
                outcome.found().unwrap().config_ids,
                scalar.found().unwrap().config_ids,
                "{label}: CostTables::build strategy diverges"
            );
        }
    }
}

/// A multi-tier mesh is *not* the scalar model: on a cluster mesh whose
/// inter-node fabric is slower than the intra-node bus, wide collectives
/// get strictly more expensive, so at least the cost (and typically the
/// chosen strategy) must move.
#[test]
fn multi_tier_mesh_diverges_from_flat() {
    let m = MachineSpec::gtx1080ti();
    let graph = Benchmark::Transformer.build_tiny();
    let p = 32;
    let flat = CostTables::build_mesh(
        &graph,
        ConfigRule::new(p),
        &DeviceMesh::flat(&m),
        &TableOptions::default(),
        None,
    );
    let tiered = CostTables::build_mesh(
        &graph,
        ConfigRule::new(p),
        &DeviceMesh::cluster(&m, 4, 8),
        &TableOptions::default(),
        None,
    );
    let flat_best = Search::new(&graph)
        .tables(&flat)
        .run()
        .into_outcome()
        .expect_found("flat");
    let tiered_best = Search::new(&graph)
        .tables(&tiered)
        .run()
        .into_outcome()
        .expect_found("tiered");
    assert!(
        tiered_best.cost > flat_best.cost,
        "slower inter-node links must not make the optimum cheaper \
         (flat {}, tiered {})",
        flat_best.cost,
        tiered_best.cost
    );
}
