//! Theorem 2 invariants on the real model-zoo graphs: the sets maintained
//! by GenerateSeq's update rule equal the dependent sets `D(i)` computed
//! from first principles, and the structural containment the DP relies on
//! (`D(j) ⊆ D(i) ∪ {v^(i)}` for children) holds.

use pase::core::{generate_seq_with_sets, ConnectedSetMode, VertexStructure};
use pase::graph::Graph;
use pase::models::{densenet, resnet, Benchmark, DenseNetConfig, ResNetConfig};

fn check_theorem2(g: &Graph, label: &str) {
    let (order, maintained) = generate_seq_with_sets(g);
    let s = VertexStructure::build(g, &order, ConnectedSetMode::Exact);
    for (i, m) in maintained.iter().enumerate() {
        assert_eq!(
            m,
            s.dependent_set(i),
            "{label}: maintained set diverges from D({i})"
        );
    }
}

fn check_child_containment(g: &Graph, label: &str) {
    // Exact connected sets admit *any* ordering; the prefix (naive
    // recurrence (2)) form is only valid with breadth-first ordering, whose
    // connected prefixes make D_B(i-1) ⊆ D_B(i) ∪ {v^(i)} — exactly the
    // pairing the paper uses.
    let (gs_order, _) = generate_seq_with_sets(g);
    let bfs = pase::graph::bfs_order(g);
    for (mode, order) in [
        (ConnectedSetMode::Exact, &gs_order),
        (ConnectedSetMode::Prefix, &bfs),
    ] {
        let s = VertexStructure::build(g, order, mode);
        for i in 0..g.len() {
            let vi = s.vertex(i);
            let di = s.dependent_set(i);
            for &j in s.subset_anchors(i) {
                for &w in s.dependent_set(j) {
                    assert!(
                        w == vi || di.binary_search(&w).is_ok(),
                        "{label} ({mode:?}): D({j}) member {w} outside D({i}) ∪ {{{vi}}}"
                    );
                }
            }
        }
    }
}

#[test]
fn theorem2_holds_on_every_paper_benchmark() {
    for bench in Benchmark::all() {
        let g = bench.build();
        check_theorem2(&g, bench.name());
    }
}

#[test]
fn theorem2_holds_on_dense_and_residual_graphs() {
    check_theorem2(&densenet(&DenseNetConfig::paper()), "densenet");
    check_theorem2(&resnet(&ResNetConfig::paper()), "resnet");
}

#[test]
fn child_dependent_sets_are_contained() {
    for bench in Benchmark::all() {
        let g = bench.build();
        check_child_containment(&g, bench.name());
    }
    check_child_containment(&densenet(&DenseNetConfig::tiny()), "densenet");
}

#[test]
fn generate_seq_matches_paper_bounds_per_benchmark() {
    use pase::core::dependent_set_sizes;
    // (benchmark, expected max |D(i)| under GenerateSeq)
    let expected = [
        (Benchmark::AlexNet, 1),
        (Benchmark::InceptionV3, 2),
        (Benchmark::Rnnlm, 1),
        (Benchmark::Transformer, 3),
    ];
    for (bench, bound) in expected {
        let g = bench.build();
        let (order, _) = generate_seq_with_sets(&g);
        let m = dependent_set_sizes(&g, &order).into_iter().max().unwrap();
        assert!(
            m <= bound,
            "{}: max |D| = {m}, expected ≤ {bound}",
            bench.name()
        );
    }
}
