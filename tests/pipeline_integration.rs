//! Integration tests of the §VI pipeline composition across paper-scale
//! models.

use pase::core::Search;
use pase::cost::{ConfigRule, CostTables, MachineSpec};
use pase::models::Benchmark;
use pase::pipeline::{plan_pipeline, simulate_pipeline, PipelineOptions};
use pase::sim::{simulate_step, SimOptions, Topology};

#[test]
fn single_stage_pipeline_matches_plain_pase_exactly() {
    let machine = MachineSpec::gtx1080ti();
    for bench in Benchmark::all() {
        let p = 8;
        let g = bench.build_for(p);
        let plan = plan_pipeline(
            &g,
            p,
            &machine,
            &PipelineOptions {
                stages: 1,
                microbatches: 4,
                ..Default::default()
            },
        )
        .unwrap_or_else(|e| panic!("{}: {e}", bench.name()));
        let topo = Topology::cluster(machine.clone(), p).unwrap();
        let rep = simulate_pipeline(&g, &plan, &topo, &SimOptions::default());

        let tables = CostTables::build(&g, ConfigRule::new(p), &machine);
        let plain = Search::new(&g)
            .tables(&tables)
            .run()
            .expect_found(bench.name());
        let plain_rep = simulate_step(
            &g,
            &tables.ids_to_strategy(&plain.config_ids),
            &topo,
            &SimOptions::default(),
        );
        assert!(
            (rep.step_seconds - plain_rep.step_seconds).abs() <= 1e-9 * plain_rep.step_seconds,
            "{}: pipeline {} vs plain {}",
            bench.name(),
            rep.step_seconds,
            plain_rep.step_seconds
        );
    }
}

#[test]
fn pipeline_plans_are_consistent_across_benchmarks() {
    let machine = MachineSpec::gtx1080ti();
    for bench in Benchmark::all() {
        let p = 16;
        let g = bench.build_for(p);
        let stages = if g.len() >= 4 { 4 } else { 2 };
        let plan = plan_pipeline(
            &g,
            p,
            &machine,
            &PipelineOptions {
                stages,
                microbatches: 8,
                ..Default::default()
            },
        )
        .unwrap_or_else(|e| panic!("{}: {e}", bench.name()));
        // every node assigned, every stage nonempty
        assert_eq!(plan.stage_of.len(), g.len());
        for ((sub, mapping), strategy) in plan.stage_graphs.iter().zip(&plan.stage_strategies) {
            assert!(!sub.is_empty(), "{}", bench.name());
            assert_eq!(sub.len(), mapping.len());
            assert_eq!(strategy.len(), sub.len());
        }
        let topo = Topology::cluster(machine.clone(), plan.devices_per_stage).unwrap();
        let rep = simulate_pipeline(&g, &plan, &topo, &SimOptions::default());
        assert!(rep.step_seconds.is_finite() && rep.step_seconds > 0.0);
        assert_eq!(rep.stage_seconds.len(), stages);
        // bubble factor matches (M + S − 1)/M
        assert!((rep.bubble_factor - (8.0 + stages as f64 - 1.0) / 8.0).abs() < 1e-12);
    }
}

#[test]
fn boundary_bytes_count_only_cross_stage_edges() {
    let machine = MachineSpec::gtx1080ti();
    let g = Benchmark::AlexNet.build_for(8);
    let plan = plan_pipeline(
        &g,
        8,
        &machine,
        &PipelineOptions {
            stages: 2,
            microbatches: 4,
            ..Default::default()
        },
    )
    .unwrap();
    let topo = Topology::cluster(machine.clone(), 4).unwrap();
    let rep = simulate_pipeline(&g, &plan, &topo, &SimOptions::default());
    // a path graph split in two has exactly one crossing edge (fwd+bwd)
    let crossing: Vec<_> = g
        .edges()
        .iter()
        .filter(|e| plan.stage_of[e.src.index()] != plan.stage_of[e.dst.index()])
        .collect();
    assert_eq!(crossing.len(), 1);
    let expected = 2.0 * g.node(crossing[0].src).output.bytes();
    assert!((rep.boundary_bytes - expected).abs() < 1e-9);
}
