//! End-to-end runs of the full pipeline — model zoo → cost tables → search
//! → strategy extraction → simulation — on every paper benchmark.

use pase::baselines::data_parallel;
use pase::core::Search;
use pase::cost::{evaluate, ConfigRule, CostTables, MachineSpec};
use pase::models::Benchmark;
use pase::sim::{memory_per_device, simulate_step, SimOptions, Topology};

#[test]
fn full_pipeline_on_every_paper_benchmark() {
    let machine = MachineSpec::gtx1080ti();
    let p = 8;
    for bench in Benchmark::all() {
        let graph = bench.build_for(p);
        let tables = CostTables::build(&graph, ConfigRule::new(p), &machine);
        let result = Search::new(&graph)
            .tables(&tables)
            .run()
            .expect_found(bench.name());
        let strategy = tables.ids_to_strategy(&result.config_ids);

        // The DP's claimed minimum equals the direct evaluation of the
        // extracted strategy (the cost function is the single source of
        // truth).
        let direct = evaluate(&graph, &strategy, machine.flop_byte_ratio());
        assert!(
            (direct - result.cost).abs() <= 1e-6 * result.cost,
            "{}: DP cost {} vs direct {}",
            bench.name(),
            result.cost,
            direct
        );

        // ... and beats data parallelism under its own objective.
        let dp_cost = evaluate(&graph, &data_parallel(&graph, p), machine.flop_byte_ratio());
        assert!(
            result.cost <= dp_cost * (1.0 + 1e-9),
            "{}: DP-parallelism {} beats search {}",
            bench.name(),
            dp_cost,
            result.cost
        );

        // The simulator accepts and times the strategy.
        let topo = Topology::cluster(machine.clone(), p).unwrap();
        let rep = simulate_step(&graph, &strategy, &topo, &SimOptions::default());
        assert!(rep.step_seconds > 0.0 && rep.step_seconds.is_finite());
        assert!(rep.throughput > 0.0);
        let mem = memory_per_device(&graph, &strategy, &topo);
        assert!(mem > 0.0 && mem.is_finite());
    }
}

#[test]
fn found_strategies_beat_data_parallelism_in_simulation_at_scale() {
    // The Fig. 6 headline at p = 32 on the low-balance machine: the PaSE
    // strategy's simulated throughput is at least data parallelism's for
    // every benchmark, and strictly better for the FC/embedding-heavy ones.
    let machine = MachineSpec::rtx2080ti();
    let p = 32;
    let topo = Topology::cluster(machine.clone(), p).unwrap();
    let opts = SimOptions::default();
    let mut strictly_better = 0;
    for bench in Benchmark::all() {
        let graph = bench.build_for(p);
        let tables = CostTables::build(&graph, ConfigRule::new(p), &machine);
        let result = Search::new(&graph)
            .tables(&tables)
            .run()
            .expect_found(bench.name());
        let ours = tables.ids_to_strategy(&result.config_ids);
        let ours_tp = simulate_step(&graph, &ours, &topo, &opts).throughput;
        let dp_tp = simulate_step(&graph, &data_parallel(&graph, p), &topo, &opts).throughput;
        assert!(
            ours_tp >= dp_tp * 0.99,
            "{}: ours {} < DP {}",
            bench.name(),
            ours_tp,
            dp_tp
        );
        if ours_tp > dp_tp * 1.25 {
            strictly_better += 1;
        }
    }
    assert!(
        strictly_better >= 2,
        "expected clear wins on at least two benchmarks"
    );
}

#[test]
fn search_statistics_match_paper_structure() {
    // §III-C / §IV-A structural claims, at p = 8.
    let machine = MachineSpec::gtx1080ti();
    let inception = Benchmark::InceptionV3.build();
    let tables = CostTables::build(&inception, ConfigRule::new(8), &machine);
    let r = Search::new(&inception)
        .tables(&tables)
        .run()
        .expect_found("inception");
    assert!(
        r.stats.max_dependent_set <= 2,
        "GenerateSeq must keep |D| ≤ 2 on InceptionV3"
    );

    for bench in [Benchmark::AlexNet, Benchmark::Rnnlm] {
        let g = bench.build();
        let t = CostTables::build(&g, ConfigRule::new(8), &machine);
        let r = Search::new(&g).tables(&t).run().expect_found(bench.name());
        assert!(
            r.stats.max_dependent_set <= 1,
            "{} is a path graph",
            bench.name()
        );
    }

    let transformer = Benchmark::Transformer.build();
    let t = CostTables::build(&transformer, ConfigRule::new(8), &machine);
    let r = Search::new(&transformer)
        .tables(&t)
        .run()
        .expect_found("transformer");
    assert!(
        r.stats.max_dependent_set >= 2,
        "the encoder output's long live range must enlarge Transformer dependent sets"
    );
}

#[test]
fn weak_scaling_batches_grow_with_devices() {
    for bench in Benchmark::all() {
        let g1 = bench.build_for(1);
        let g8 = bench.build_for(8);
        assert_eq!(pase::sim::batch_size(&g8), 8 * pase::sim::batch_size(&g1));
    }
}
