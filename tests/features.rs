//! Integration tests of the extension features: memory-constrained search,
//! GShard export, placement policies, and the unrolled-RNN representation.

use pase::baselines::data_parallel;
use pase::core::Search;
use pase::cost::{
    evaluate, fit_machine, layer_footprint_bytes, strategy_features, to_sharding_json, ConfigRule,
    CostTables, MachineSpec, Observation,
};
use pase::models::{rnnlm, rnnlm_unrolled, Benchmark, RnnlmConfig};
use pase::sim::{simulate_step, PlacementPolicy, SimOptions, Topology};

#[test]
fn memory_limited_search_respects_the_cap_everywhere() {
    // AlexNet at p = 8 with a tight per-device budget: the found strategy
    // must keep every layer under the cap, and cannot be cheaper than the
    // unconstrained optimum.
    let machine = MachineSpec::gtx1080ti();
    let p = 8;
    let g = Benchmark::AlexNet.build_for(p);
    let unconstrained = {
        let t = CostTables::build(&g, ConfigRule::new(p), &machine);
        Search::new(&g)
            .tables(&t)
            .run()
            .expect_found("unconstrained")
            .cost
    };
    let cap = 300.0 * (1 << 20) as f64; // 300 MiB/device
    let t = CostTables::build(&g, ConfigRule::new(p).with_memory_limit(cap), &machine);
    let r = Search::new(&g).tables(&t).run().expect_found("capped");
    let s = t.ids_to_strategy(&r.config_ids);
    for (id, node) in g.iter() {
        let fp = layer_footprint_bytes(node, s.config(id));
        assert!(
            fp <= cap,
            "layer '{}' footprint {fp:.3e} exceeds the cap",
            node.name
        );
    }
    assert!(r.cost >= unconstrained * (1.0 - 1e-9));
    // Pure data parallelism replicates the 37M-element fc1 weight (>400 MiB
    // with optimizer state), so it must be excluded from the capped space.
    let dp = data_parallel(&g, p);
    assert_eq!(
        t.strategy_to_ids(&dp),
        None,
        "DP should not fit a 300 MiB cap"
    );
}

#[test]
fn exported_json_covers_every_layer() {
    let machine = MachineSpec::gtx1080ti();
    let g = Benchmark::AlexNet.build();
    let t = CostTables::build(&g, ConfigRule::new(8), &machine);
    let r = Search::new(&g).tables(&t).run().expect_found("alexnet");
    let json = to_sharding_json(&g, &t.ids_to_strategy(&r.config_ids));
    for node in g.nodes() {
        assert!(
            json.contains(&format!("\"name\": \"{}\"", node.name)),
            "{}",
            node.name
        );
    }
    assert_eq!(json.matches("\"splits\"").count(), g.len());
    assert!(json.contains("\"devices\": 8"));
}

#[test]
fn comm_aware_placement_never_hurts_the_searched_strategies() {
    let machine = MachineSpec::gtx1080ti();
    for bench in Benchmark::all() {
        let p = 32;
        let g = bench.build_for(p);
        let t = CostTables::build(&g, ConfigRule::new(p), &machine);
        let r = Search::new(&g).tables(&t).run().expect_found(bench.name());
        let s = t.ids_to_strategy(&r.config_ids);
        let topo = Topology::cluster(machine.clone(), p).unwrap();
        let canonical = simulate_step(&g, &s, &topo, &SimOptions::default());
        let aware = simulate_step(
            &g,
            &s,
            &topo,
            &SimOptions {
                placement: PlacementPolicy::CommAware,
                ..SimOptions::default()
            },
        );
        assert!(
            aware.step_seconds <= canonical.step_seconds * 1.05,
            "{}: comm-aware {} vs canonical {}",
            bench.name(),
            aware.step_seconds,
            canonical.step_seconds
        );
    }
}

#[test]
fn single_vertex_rnn_beats_unrolled_representation() {
    // §IV-A: the single-vertex encoding finds strategies at least as good
    // (under a comparable cost accounting) and searches much faster.
    let machine = MachineSpec::gtx1080ti();
    let p = 8;
    let cfg = RnnlmConfig::paper();
    let single = rnnlm(&cfg);
    let unrolled = rnnlm_unrolled(&cfg);

    let search = |g: &pase::graph::Graph| {
        let t = CostTables::build(g, ConfigRule::new(p), &machine);
        let r = Search::new(g).tables(&t).run().expect_found("rnn");
        (r.cost, r.stats.elapsed)
    };
    let (cost_single, time_single) = search(&single);
    let (cost_unrolled, time_unrolled) = search(&unrolled);
    assert!(
        cost_single < cost_unrolled,
        "single-vertex {cost_single:.4e} vs unrolled {cost_unrolled:.4e}"
    );
    assert!(
        time_unrolled > time_single,
        "unrolled search should be slower ({time_unrolled:?} vs {time_single:?})"
    );
}

#[test]
fn memory_limit_forbidding_everything_panics_with_context() {
    let machine = MachineSpec::gtx1080ti();
    let g = Benchmark::AlexNet.build();
    let result = std::panic::catch_unwind(|| {
        CostTables::build(&g, ConfigRule::new(2).with_memory_limit(1024.0), &machine)
    });
    let err = result.expect_err("1 KiB/device cannot fit AlexNet");
    let msg = err.downcast_ref::<String>().cloned().unwrap_or_default();
    assert!(msg.contains("memory limit"), "got: {msg}");
}

#[test]
fn calibration_recovers_a_machine_from_simulated_runs() {
    // §V: fit (F, B) from a handful of "profiled" steps — here the
    // hierarchical simulator stands in for the cluster — then check the
    // fitted flat model still ranks strategies like the simulator.
    use pase::baselines::{data_parallel, owt};
    let truth = MachineSpec::gtx1080ti();
    let p = 8;
    let g = Benchmark::AlexNet.build_for(p);
    let topo = Topology::cluster(truth.clone(), p).unwrap();
    let opts = SimOptions {
        overlap: 0.0,
        ..SimOptions::default()
    };

    let tables = CostTables::build(&g, ConfigRule::new(p), &truth);
    let pase_best = {
        let r = Search::new(&g).tables(&tables).run().expect_found("search");
        tables.ids_to_strategy(&r.config_ids)
    };
    let candidates = [data_parallel(&g, p), owt(&g, p), pase_best];
    let observations: Vec<Observation> = candidates
        .iter()
        .map(|s| {
            let (flops, bytes) = strategy_features(&g, s);
            Observation {
                compute_flops: flops,
                comm_bytes: bytes,
                seconds: simulate_step(&g, s, &topo, &opts).step_seconds,
            }
        })
        .collect();
    let fitted = fit_machine(&observations).expect("fit succeeds");
    assert!(fitted.peak_flops > 0.0 && fitted.link_bandwidth > 0.0);
    // The fitted flat model must reproduce the simulator's *ranking* of
    // the observed strategies.
    let mut by_flat: Vec<usize> = (0..candidates.len()).collect();
    by_flat.sort_by(|&i, &j| {
        let fi = evaluate(&g, &candidates[i], fitted.flop_byte_ratio());
        let fj = evaluate(&g, &candidates[j], fitted.flop_byte_ratio());
        fi.partial_cmp(&fj).unwrap()
    });
    let mut by_sim: Vec<usize> = (0..candidates.len()).collect();
    by_sim.sort_by(|&i, &j| {
        observations[i]
            .seconds
            .partial_cmp(&observations[j].seconds)
            .unwrap()
    });
    assert_eq!(
        by_flat, by_sim,
        "fitted model must preserve the simulator's ranking"
    );
}

#[test]
fn evaluate_is_invariant_to_export_roundtrip_metadata() {
    // Exporting must not mutate the strategy (regression guard on the
    // report/export paths sharing Strategy references).
    let machine = MachineSpec::gtx1080ti();
    let g = Benchmark::Rnnlm.build();
    let t = CostTables::build(&g, ConfigRule::new(4), &machine);
    let r = Search::new(&g).tables(&t).run().expect_found("rnnlm");
    let s = t.ids_to_strategy(&r.config_ids);
    let before = evaluate(&g, &s, machine.flop_byte_ratio());
    let _ = to_sharding_json(&g, &s);
    let _ = s.report(&g);
    let after = evaluate(&g, &s, machine.flop_byte_ratio());
    assert_eq!(before, after);
}
