#!/usr/bin/env python3
"""Validate a `pase search --trace-out` Chrome trace against its --json spec.

Usage: check_trace.py <trace.json> <spec.json>

Checks:
  * both files parse as JSON;
  * the trace contains one "X" span for every pipeline phase (enumeration,
    interning, table_build, prune, structure, plan, backtrack) and at least
    one per-wavefront fill span; when the adaptive gate skipped the prune
    (stats.prune_skipped), the prune span must be ABSENT instead of empty;
  * when stats.dp_kernel is a packing kernel ("tiled", or "frontier-tiled"
    for Pareto-frontier searches), the trace must contain the nested
    "kernel" sub-span and a packed_bytes counter sample; with the
    per-entry kernels ("scalar" / "frontier") neither may appear;
  * the summed span durations are within 10% of the elapsed time reported
    by the embedded search report (the spans partition the pipeline, so
    their sum must also not exceed elapsed by more than rounding). The
    "kernel" span is nested inside its fill span, so it is excluded from
    the disjoint sum.
"""

import json
import sys


def fail(msg: str) -> None:
    print(f"check_trace: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def main() -> None:
    if len(sys.argv) != 3:
        fail(f"usage: {sys.argv[0]} <trace.json> <spec.json>")
    trace_path, spec_path = sys.argv[1], sys.argv[2]

    with open(trace_path, encoding="utf-8") as f:
        trace = json.load(f)
    with open(spec_path, encoding="utf-8") as f:
        spec = json.load(f)

    events = trace.get("traceEvents")
    if not isinstance(events, list) or not events:
        fail("trace has no traceEvents array")
    spans = [e for e in events if e.get("ph") == "X"]
    names = {e["name"] for e in spans}

    report = spec.get("search_report")
    if not isinstance(report, dict):
        fail("spec has no embedded search_report object")
    prune_skipped = bool(report["stats"].get("prune_skipped", False))

    required = {
        "enumeration",
        "interning",
        "table_build",
        "structure",
        "plan",
        "backtrack",
    }
    if prune_skipped:
        # The adaptive gate decided the prune would not pay off: the phase
        # never ran, so it must not leave an empty span behind.
        if "prune" in names:
            fail("stats.prune_skipped is set but the trace has a prune span")
    else:
        required.add("prune")
    missing = required - names
    if missing:
        fail(f"missing phase spans: {sorted(missing)} (have: {sorted(names)})")
    wavefronts = [n for n in names if n.startswith("wavefront ")]
    if not wavefronts:
        fail(f"no per-wavefront fill spans (have: {sorted(names)})")

    dp_kernel = report["stats"].get("dp_kernel")
    counter_names = {e["name"] for e in events if e.get("ph") == "C"}
    if dp_kernel in ("tiled", "frontier-tiled"):
        if "kernel" not in names:
            fail(f"stats.dp_kernel is {dp_kernel} but the trace has no kernel span")
        if "packed_bytes" not in counter_names:
            fail(
                f"stats.dp_kernel is {dp_kernel} but the trace has no "
                "packed_bytes counter"
            )
    else:
        if "kernel" in names:
            fail(f"dp_kernel={dp_kernel!r} must not record a kernel span")
        if "packed_bytes" in counter_names:
            fail(f"dp_kernel={dp_kernel!r} must not record a packed_bytes counter")

    elapsed_us = report["stats"]["elapsed"] * 1e6
    # The kernel sub-span nests inside its fill span — its time is already
    # counted by the parent, so it stays out of the disjoint sum.
    span_sum_us = sum(e["dur"] for e in spans if e["name"] != "kernel")
    if elapsed_us <= 0:
        fail("report elapsed is not positive")
    ratio = span_sum_us / elapsed_us
    if not 0.9 <= ratio <= 1.1:
        fail(
            f"span sum {span_sum_us / 1e3:.2f}ms vs reported elapsed "
            f"{elapsed_us / 1e3:.2f}ms (ratio {ratio:.3f}, want 0.9..1.1)"
        )

    counters = [e for e in events if e.get("ph") == "C"]
    if not counters:
        fail("no counter events (expected table_bytes samples)")

    print(
        f"check_trace: OK — {len(spans)} spans ({len(wavefronts)} wavefronts), "
        f"{len(counters)} counter samples, span sum covers {ratio:.1%} of elapsed"
    )


if __name__ == "__main__":
    main()
