#!/usr/bin/env python3
"""Planner-service smoke assertions (see scripts/tier1.sh).

Default mode takes the response files of two identical `pase query` calls
against one server and checks the content-addressed cache contract: the
first response is a miss, the second is a hit, and both carry the same
cache key, cost, and strategy (the hit must be byte-for-byte the cached
answer, not a re-search).

An optional third file is the response of a `pase query --stats` probe
issued after the two queries; it must report the server's counters with
the two search requests accounted for (one miss, one hit) and nothing
left in flight.

Two further modes:

  check_serve.py --batch FILE N    FILE is the response of a
                                   `pase query --batch N` for a key the
                                   server had not seen: one response array
                                   of N elements, element 0 a miss and the
                                   other N-1 cache hits of the identical
                                   strategy (1 search + N-1 hits).
  check_serve.py --prewarm FILE    FILE is the response of the FIRST query
                                   against a `--prewarm`ed server; it must
                                   already be a cache hit.
  check_serve.py --frontier F B1 B2 STATS
                                   F is the response of a `--frontier`
                                   query (a miss carrying the Pareto set);
                                   B1/B2 are two different `--max-memory`
                                   queries for the same cell. The cache key
                                   drops the budget, so both must be cache
                                   hits on F's entry — one DP fill serves
                                   every budget variant — and each answer
                                   must be a point of F's frontier. STATS
                                   must account exactly 1 miss + 2 hits.
  check_serve.py --frontier-kernel TILED SCALAR
                                   TILED is a default `--frontier` response
                                   (the run-blocked frontier microkernel,
                                   stats.dp_kernel "frontier-tiled");
                                   SCALAR the response of a fresh cell
                                   queried with `--dp-kernel scalar`
                                   (stats.dp_kernel "frontier"). Both must
                                   be fresh fills with well-formed Pareto
                                   sets whose length matches
                                   stats.frontier_len.
  check_serve.py --mesh FLAT FLAT_INLINE TIER2 HETERO STATS
                                   One model planned across mesh shapes.
                                   FLAT names a registry profile;
                                   FLAT_INLINE sends the same machine as an
                                   inline scalar object and must hit FLAT's
                                   cache entry with the identical cost and
                                   strategy (the key is name-blind and a
                                   flat mesh is bit-identical to the scalar
                                   model); TIER2/HETERO are inline multi-
                                   axis meshes and must be misses on their
                                   own distinct entries, costed no cheaper
                                   than FLAT. STATS must account exactly
                                   3 misses + 1 hit.
"""

import json
import sys

SCHEMA_VERSION = 4


def check_batch(path: str, n: int) -> None:
    with open(path) as f:
        resp = json.load(f)
    assert "error" not in resp, f"batch query failed: {resp['error']}"
    assert resp["schema_version"] == SCHEMA_VERSION, f"batch: bad schema_version: {resp}"
    batch = resp["batch"]
    assert len(batch) == n, f"expected {n} batch responses, got {len(batch)}"
    for i, q in enumerate(batch):
        assert "error" not in q, f"batch[{i}] failed: {q['error']}"
        assert q["report"]["outcome"] == "ok", f"batch[{i}]: {q['report']}"
        assert q["cached"] is (i > 0), (
            f"batch[{i}]: identical queries must be 1 search + {n - 1} hits: "
            f"cached={q['cached']}"
        )
        assert q["cache_key"] == batch[0]["cache_key"], f"batch[{i}]: key differs"
        assert q["strategy"] == batch[0]["strategy"], f"batch[{i}]: strategy differs"
        assert q["cost"] == batch[0]["cost"], f"batch[{i}]: cost differs"
    print(
        f"serve batch OK: {n} identical queries -> 1 search + {n - 1} hits, "
        f"key {batch[0]['cache_key']}"
    )


def check_prewarm(path: str) -> None:
    with open(path) as f:
        q = json.load(f)
    assert "error" not in q, f"prewarm query failed: {q['error']}"
    assert q["report"]["outcome"] == "ok", f"prewarm query: {q['report']}"
    assert q["cached"] is True, (
        "the first query against a prewarmed server must be a cache hit"
    )
    assert q["strategy"], "prewarm query: empty strategy"
    print(f"serve prewarm OK: first query hit, key {q['cache_key']}")


def check_stats(path: str) -> None:
    with open(path) as f:
        resp = json.load(f)
    assert "error" not in resp, f"stats query failed: {resp['error']}"
    assert resp["schema_version"] == SCHEMA_VERSION, f"stats: bad schema_version: {resp}"
    stats = resp["stats"]
    assert stats["cache_bytes"] > 0, f"a populated cache must report bytes: {stats}"
    hits, misses = stats["cache_hits"], stats["cache_misses"]
    coalesced, in_flight = stats["coalesced"], stats["in_flight"]
    assert stats["requests"] >= 3, f"expected >= 3 requests (incl. probe): {stats}"
    assert misses >= 1, f"the first search query must be a miss: {stats}"
    assert hits >= 1, f"the second search query must be a hit: {stats}"
    assert hits + misses + coalesced == 2, (
        f"exactly the two search queries must be accounted: {stats}"
    )
    assert in_flight == 0, f"no search may be left in flight: {stats}"
    print(
        f"serve stats OK: {stats['requests']} requests, {hits} hits, "
        f"{misses} misses, {coalesced} coalesced"
    )


def check_frontier(f_path: str, b1_path: str, b2_path: str, stats_path: str) -> None:
    with open(f_path) as f:
        fr = json.load(f)
    assert "error" not in fr, f"frontier query failed: {fr['error']}"
    assert fr["schema_version"] == SCHEMA_VERSION, f"frontier: bad schema_version: {fr}"
    assert fr["cached"] is False, "the frontier query must be the one DP fill"
    points = fr["frontier"]
    assert points, "frontier query returned an empty frontier"
    for a, b in zip(points, points[1:]):
        assert a["cost"] < b["cost"] and a["memory_bytes"] > b["memory_bytes"], (
            f"frontier is not dominance-pruned: {a} vs {b}"
        )
    assert fr["cost"] == points[0]["cost"], (
        "an unbudgeted frontier query must answer the min-time point"
    )

    answers = {(p["cost"], p["memory_bytes"]) for p in points}
    for i, path in enumerate((b1_path, b2_path), 1):
        with open(path) as f:
            q = json.load(f)
        assert "error" not in q, f"budget query {i} failed: {q['error']}"
        assert q["cached"] is True, (
            f"budget query {i} must be served from the cached frontier "
            f"(the cache key drops the budget): {q}"
        )
        assert q["cache_key"] == fr["cache_key"], (
            f"budget query {i} hit a different entry than the frontier query"
        )
        assert q["infeasible"] is False, f"budget query {i}: {q}"
        assert (q["cost"], q["peak_memory_bytes"]) in answers, (
            f"budget query {i} answered ({q['cost']}, {q['peak_memory_bytes']}), "
            f"which is not a point of the cached frontier"
        )

    with open(stats_path) as f:
        stats = json.load(f)["stats"]
    assert stats["cache_misses"] == 1, (
        f"one DP fill must serve every budget variant: {stats}"
    )
    assert stats["cache_hits"] == 2, f"both budget queries must be hits: {stats}"
    print(
        f"serve frontier OK: {len(points)}-point frontier, key {fr['cache_key']}, "
        f"1 fill + 2 budget hits"
    )


def check_frontier_kernel(tiled_path: str, scalar_path: str) -> None:
    responses = {}
    for name, path, kernel in (
        ("tiled", tiled_path, "frontier-tiled"),
        ("scalar", scalar_path, "frontier"),
    ):
        with open(path) as f:
            q = json.load(f)
        assert "error" not in q, f"{name} frontier query failed: {q['error']}"
        assert q["report"]["outcome"] == "ok", f"{name}: {q['report']}"
        assert q["cached"] is False, f"{name}: must be a fresh DP fill, not a hit"
        stats = q["report"]["stats"]
        assert stats["dp_kernel"] == kernel, (
            f"{name}: expected dp_kernel {kernel!r}: {stats}"
        )
        points = q["frontier"]
        assert points, f"{name}: empty frontier"
        for a, b in zip(points, points[1:]):
            assert a["cost"] < b["cost"] and a["memory_bytes"] > b["memory_bytes"], (
                f"{name}: frontier is not dominance-pruned: {a} vs {b}"
            )
        assert stats["frontier_len"] == len(points), (
            f"{name}: stats.frontier_len {stats['frontier_len']} != "
            f"{len(points)} returned points"
        )
        responses[name] = q
    print(
        f"serve frontier-kernel OK: tiled {len(responses['tiled']['frontier'])} "
        f"points, scalar {len(responses['scalar']['frontier'])} points, "
        f"kernels recorded in both reports"
    )


def check_mesh(
    flat_path: str, inline_path: str, tier2_path: str, hetero_path: str, stats_path: str
) -> None:
    responses = {}
    for name, path in (
        ("flat", flat_path),
        ("flat_inline", inline_path),
        ("tier2", tier2_path),
        ("hetero", hetero_path),
    ):
        with open(path) as f:
            q = json.load(f)
        assert "error" not in q, f"{name} query failed: {q['error']}"
        assert q["schema_version"] == SCHEMA_VERSION, f"{name}: bad schema_version: {q}"
        assert q["report"]["outcome"] == "ok", f"{name}: {q['report']}"
        assert q["strategy"], f"{name}: empty strategy"
        responses[name] = q

    flat, inline = responses["flat"], responses["flat_inline"]
    tier2, hetero = responses["tier2"], responses["hetero"]

    # Flat == scalar: the inline scalar-machine object describes the same
    # flat mesh as the registry name, so it must land on the same
    # (name-blind) cache entry and be served the identical answer.
    assert flat["cached"] is False, "the named-profile query must be the first miss"
    assert inline["cached"] is True, (
        "an inline scalar machine equal to the profile must hit the profile's entry"
    )
    assert inline["cache_key"] == flat["cache_key"], (
        "the cache key must be name-blind: same axes, same entry"
    )
    assert inline["cost"] == flat["cost"], "flat inline mesh changed the cost"
    assert inline["strategy"] == flat["strategy"], "flat inline mesh changed the strategy"
    assert flat["report"]["stats"]["mesh_axes"] == 1, flat["report"]["stats"]

    # Each multi-axis mesh is its own cache entry and its own plan.
    keys = {flat["cache_key"], tier2["cache_key"], hetero["cache_key"]}
    assert len(keys) == 3, f"mesh shapes must cache separately: {keys}"
    for name, q, axes in (("tier2", tier2, 2), ("hetero", hetero, 3)):
        assert q["cached"] is False, f"{name} must be a fresh plan, not a hit"
        assert q["report"]["stats"]["mesh_axes"] == axes, (
            f"{name}: expected {axes} mesh axes: {q['report']['stats']}"
        )
        assert q["cost"] >= flat["cost"], (
            f"{name}: slower outer fabrics cannot beat the flat mesh "
            f"({q['cost']} < {flat['cost']})"
        )

    with open(stats_path) as f:
        stats = json.load(f)["stats"]
    assert stats["cache_misses"] == 3, f"three mesh shapes = three fills: {stats}"
    assert stats["cache_hits"] == 1, f"the inline flat query must be the one hit: {stats}"
    print(
        f"serve mesh OK: 3 mesh shapes -> 3 entries, inline flat == scalar "
        f"(key {flat['cache_key']}), tiered costs {tier2['cost']:.6g} / "
        f"{hetero['cost']:.6g} vs flat {flat['cost']:.6g}"
    )


def main() -> None:
    if sys.argv[1] == "--batch":
        check_batch(sys.argv[2], int(sys.argv[3]))
        return
    if sys.argv[1] == "--prewarm":
        check_prewarm(sys.argv[2])
        return
    if sys.argv[1] == "--frontier":
        check_frontier(sys.argv[2], sys.argv[3], sys.argv[4], sys.argv[5])
        return
    if sys.argv[1] == "--frontier-kernel":
        check_frontier_kernel(sys.argv[2], sys.argv[3])
        return
    if sys.argv[1] == "--mesh":
        check_mesh(sys.argv[2], sys.argv[3], sys.argv[4], sys.argv[5], sys.argv[6])
        return
    with open(sys.argv[1]) as f:
        q1 = json.load(f)
    with open(sys.argv[2]) as f:
        q2 = json.load(f)

    for i, q in enumerate((q1, q2), 1):
        assert "error" not in q, f"query {i} failed: {q['error']}"
        assert q["schema_version"] == SCHEMA_VERSION, f"query {i}: bad schema_version: {q}"
        assert q["report"]["outcome"] == "ok", f"query {i}: {q['report']}"
        assert q["strategy"], f"query {i}: empty strategy"

    assert q1["cached"] is False, "first query must be a cache miss"
    assert q2["cached"] is True, "second identical query must be a cache hit"
    assert q1["cache_key"] == q2["cache_key"], "cache keys differ"
    assert q1["strategy"] == q2["strategy"], "cache hit returned a different strategy"
    assert q1["cost"] == q2["cost"], "cache hit returned a different cost"

    print(
        f"serve smoke OK: key {q1['cache_key']}, "
        f"{len(q1['strategy'])} node configs, cost {q1['cost']:.6g}"
    )

    if len(sys.argv) > 3:
        check_stats(sys.argv[3])


if __name__ == "__main__":
    main()
