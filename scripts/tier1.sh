#!/usr/bin/env bash
# Tier-1 verification gate (see ROADMAP.md): release build, full test
# suite, and a smoke run of the search A/B benchmark so the exactness
# assertion in bench_search (pruned optimum bit-identical to unpruned)
# executes on the real benchmark graphs, not just the tiny test variants.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release
cargo test -q

# Smoke: regenerates BENCH_search.json; fails if pruning ever changes the
# optimum on any model at p ∈ {8, 32, 64}.
cargo run -p pase-bench --release --bin bench_search
