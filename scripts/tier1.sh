#!/usr/bin/env bash
# Tier-1 verification gate (see ROADMAP.md): formatting, release build,
# full test suite, a smoke run of the search A/B benchmark so the
# exactness assertions in bench_search (pruned optimum bit-identical to
# unpruned, flat-mesh optimum bit-identical to scalar) execute on the
# real benchmark graphs, a trace smoke test validating the --trace-out
# Chrome-trace output end to end, and a mesh smoke planning one model
# across three device-mesh shapes through the serve path.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo fmt --check
cargo build --release
cargo test -q

# Smoke: regenerates BENCH_search.json; fails if pruning ever changes the
# optimum on any model at p ∈ {8, 32, 64}.
cargo run -p pase-bench --release --bin bench_search

# Trace smoke: the acceptance search must write a valid Chrome-trace JSON
# document containing a span for every pipeline phase, and the spans must
# account for the reported elapsed time (within 10%). Run explicitly with
# the tiled DP kernel: check_trace.py then also asserts the nested
# "kernel" sub-span and the packed_bytes counter are present.
trace_dir="$(mktemp -d)"
serve_dir="$(mktemp -d)"
trap 'rm -rf "$trace_dir" "$serve_dir"' EXIT
cargo run -p pase-cli --release --bin pase -- search \
    --model transformer --devices 64 --dp-kernel tiled \
    --trace-out "$trace_dir/trace.json" --json --out "$trace_dir/spec.json"
python3 scripts/check_trace.py "$trace_dir/trace.json" "$trace_dir/spec.json"

# Scalar-kernel trace smoke: the same search with --dp-kernel scalar must
# record NO kernel span and NO packed_bytes counter — check_trace.py
# asserts both directions from stats.dp_kernel.
./target/release/pase search --model transformer --devices 64 \
    --dp-kernel scalar \
    --trace-out "$trace_dir/scalar_trace.json" --json \
    --out "$trace_dir/scalar_spec.json"
python3 scripts/check_trace.py "$trace_dir/scalar_trace.json" \
    "$trace_dir/scalar_spec.json"

# Gate smoke: with --prune-gate=auto on AlexNet the prune must be skipped
# (stats.prune_skipped in the report) and the trace must then contain NO
# prune span — check_trace.py asserts both directions.
./target/release/pase search --model alexnet --devices 32 --prune-gate auto \
    --trace-out "$trace_dir/gate_trace.json" --json \
    --out "$trace_dir/gate_spec.json"
python3 - "$trace_dir/gate_spec.json" <<'EOF'
import json, sys
stats = json.load(open(sys.argv[1]))["search_report"]["stats"]
assert stats["prune_skipped"], f"gate=auto must skip the prune on alexnet p=32: {stats}"
assert stats["gate_dp_est"] > 0 and stats["gate_prune_est"] > 0, stats
print("gate smoke OK: prune skipped, dp_est", stats["gate_dp_est"],
      "prune_est", stats["gate_prune_est"])
EOF
python3 scripts/check_trace.py "$trace_dir/gate_trace.json" "$trace_dir/gate_spec.json"

# Concurrent-serve smoke: small load cells against the sharded (threaded)
# and event front ends, a nonzero idle-swarm cell (32 idle connections
# must not stop the event loop from serving), and a batch-coalescing
# check (N identical queries in one batch = 1 search + N-1 hits).
cargo run -p pase-bench --release --bin bench_serve -- --smoke

# Planner-service smoke, once per front end: start `pase serve` on an
# ephemeral port, issue the same query twice, require the second to be a
# cache hit returning the identical strategy, probe the counters, then
# send a batch of 8 identical queries for a fresh key (1 search + 7
# hits), and shut down cleanly (SIGINT must drain and exit 0).
for frontend in event threaded; do
    ./target/release/pase serve --addr 127.0.0.1:0 --workers 2 \
        --frontend "$frontend" \
        > "$serve_dir/serve.out" 2> "$serve_dir/serve.err" &
    serve_pid=$!
    addr=""
    for _ in $(seq 1 100); do
        addr="$(sed -n 's/^listening on //p' "$serve_dir/serve.out")"
        [ -n "$addr" ] && break
        sleep 0.1
    done
    if [ -z "$addr" ]; then
        echo "pase serve ($frontend) never reported its address:" >&2
        cat "$serve_dir/serve.err" >&2
        exit 1
    fi
    ./target/release/pase query --model alexnet --devices 8 --addr "$addr" \
        --out "$serve_dir/q1.json"
    ./target/release/pase query --model alexnet --devices 8 --addr "$addr" \
        --out "$serve_dir/q2.json"
    ./target/release/pase query --stats --addr "$addr" --out "$serve_dir/stats.json"
    ./target/release/pase query --model mlp --devices 8 --batch 8 --addr "$addr" \
        --out "$serve_dir/batch.json"
    kill -INT "$serve_pid"
    wait "$serve_pid"
    echo "== serve smoke ($frontend front end) =="
    python3 scripts/check_serve.py "$serve_dir/q1.json" "$serve_dir/q2.json" \
        "$serve_dir/stats.json"
    python3 scripts/check_serve.py --batch "$serve_dir/batch.json" 8
done

# Prewarm smoke: a server started with --prewarm answers its first query
# for a prewarmed cell as a cache hit (prewarm fills wire-default cells,
# so the query passes --weak-scaling to match).
./target/release/pase serve --addr 127.0.0.1:0 --workers 2 \
    --prewarm alexnet:8:1080ti \
    > "$serve_dir/prewarm.out" 2> "$serve_dir/prewarm.err" &
serve_pid=$!
addr=""
for _ in $(seq 1 100); do
    addr="$(sed -n 's/^listening on //p' "$serve_dir/prewarm.out")"
    [ -n "$addr" ] && break
    sleep 0.1
done
if [ -z "$addr" ]; then
    echo "pase serve --prewarm never reported its address:" >&2
    cat "$serve_dir/prewarm.err" >&2
    exit 1
fi
./target/release/pase query --model alexnet --devices 8 --weak-scaling \
    --addr "$addr" --out "$serve_dir/prewarm_q.json"
kill -INT "$serve_pid"
wait "$serve_pid"
python3 scripts/check_serve.py --prewarm "$serve_dir/prewarm_q.json"

# Frontier smoke: one --frontier query pays the only DP fill; two
# different --max-memory queries for the same cell (one generous, one
# equal to the frontier's memory floor) must then both be cache hits on
# the same entry — the cache key deliberately drops the memory budget —
# and must answer points of the cached frontier.
./target/release/pase serve --addr 127.0.0.1:0 --workers 2 \
    > "$serve_dir/frontier.out" 2> "$serve_dir/frontier.err" &
serve_pid=$!
addr=""
for _ in $(seq 1 100); do
    addr="$(sed -n 's/^listening on //p' "$serve_dir/frontier.out")"
    [ -n "$addr" ] && break
    sleep 0.1
done
if [ -z "$addr" ]; then
    echo "pase serve (frontier smoke) never reported its address:" >&2
    cat "$serve_dir/frontier.err" >&2
    exit 1
fi
./target/release/pase query --model mlp --devices 8 --frontier \
    --addr "$addr" --out "$serve_dir/f.json"
generous="$(python3 -c "import json; \
print(max(p['memory_bytes'] for p in json.load(open('$serve_dir/f.json'))['frontier']))")"
floor="$(python3 -c "import json; \
print(min(p['memory_bytes'] for p in json.load(open('$serve_dir/f.json'))['frontier']))")"
./target/release/pase query --model mlp --devices 8 --max-memory "$generous" \
    --addr "$addr" --out "$serve_dir/b1.json"
./target/release/pase query --model mlp --devices 8 --max-memory "$floor" \
    --addr "$addr" --out "$serve_dir/b2.json"
./target/release/pase query --stats --addr "$addr" --out "$serve_dir/fstats.json"
# Frontier-kernel smoke: a fresh cell queried with --dp-kernel scalar must
# run the incremental frontier fill (stats.dp_kernel "frontier" in the
# report), while the default frontier query above ran the run-blocked
# microkernel ("frontier-tiled") — check_serve.py asserts both reports and
# the well-formedness of both Pareto sets. Issued after the stats probe so
# the 1-fill + 2-hit accounting above stays exact.
./target/release/pase query --model mlp --devices 4 --frontier \
    --dp-kernel scalar --addr "$addr" --out "$serve_dir/f_scalar.json"
kill -INT "$serve_pid"
wait "$serve_pid"
python3 scripts/check_serve.py --frontier "$serve_dir/f.json" \
    "$serve_dir/b1.json" "$serve_dir/b2.json" "$serve_dir/fstats.json"
python3 scripts/check_serve.py --frontier-kernel "$serve_dir/f.json" \
    "$serve_dir/f_scalar.json"

# Mesh smoke: one model planned across three mesh shapes. The named
# profile and an inline scalar machine object with the same numbers must
# share one cache entry (flat == scalar, and the cache key is name-blind);
# a two-tier mesh and a three-tier heterogeneous mesh must each get their
# own distinct entry, costed no cheaper than flat.
cat > "$serve_dir/flat_machine.json" <<'JSON'
{"name": "inline-1080ti", "peak_flops": 11.3e12, "link_bandwidth": 12.0e9}
JSON
cat > "$serve_dir/tier2_machine.json" <<'JSON'
{"name": "twotier", "axes": [
  {"name": "gpu",  "size": 8, "alpha": 5e-6,  "bandwidth": 12.0e9, "peak_flops": 11.3e12},
  {"name": "node", "size": 4, "alpha": 15e-6, "bandwidth": 6.0e9,  "peak_flops": 11.3e12}]}
JSON
cat > "$serve_dir/hetero_machine.json" <<'JSON'
{"name": "hetero", "axes": [
  {"name": "gpu",  "size": 2, "alpha": 5e-6,  "bandwidth": 12.0e9, "peak_flops": 11.3e12},
  {"name": "node", "size": 2, "alpha": 15e-6, "bandwidth": 6.0e9,  "peak_flops": 13.4e12},
  {"name": "rack", "size": 2, "alpha": 30e-6, "bandwidth": 1.5e9,  "peak_flops": 11.3e12}]}
JSON
./target/release/pase serve --addr 127.0.0.1:0 --workers 2 \
    > "$serve_dir/mesh.out" 2> "$serve_dir/mesh.err" &
serve_pid=$!
addr=""
for _ in $(seq 1 100); do
    addr="$(sed -n 's/^listening on //p' "$serve_dir/mesh.out")"
    [ -n "$addr" ] && break
    sleep 0.1
done
if [ -z "$addr" ]; then
    echo "pase serve (mesh smoke) never reported its address:" >&2
    cat "$serve_dir/mesh.err" >&2
    exit 1
fi
./target/release/pase query --model mlp --devices 8 --addr "$addr" \
    --out "$serve_dir/m_flat.json"
./target/release/pase query --model mlp --devices 8 \
    --machine-file "$serve_dir/flat_machine.json" --addr "$addr" \
    --out "$serve_dir/m_flat_inline.json"
./target/release/pase query --model mlp --devices 8 \
    --machine-file "$serve_dir/tier2_machine.json" --addr "$addr" \
    --out "$serve_dir/m_tier2.json"
./target/release/pase query --model mlp --devices 8 \
    --machine-file "$serve_dir/hetero_machine.json" --addr "$addr" \
    --out "$serve_dir/m_hetero.json"
./target/release/pase query --stats --addr "$addr" --out "$serve_dir/m_stats.json"
kill -INT "$serve_pid"
wait "$serve_pid"
python3 scripts/check_serve.py --mesh "$serve_dir/m_flat.json" \
    "$serve_dir/m_flat_inline.json" "$serve_dir/m_tier2.json" \
    "$serve_dir/m_hetero.json" "$serve_dir/m_stats.json"
