#!/usr/bin/env bash
# Tier-1 verification gate (see ROADMAP.md): formatting, release build,
# full test suite, a smoke run of the search A/B benchmark so the
# exactness assertion in bench_search (pruned optimum bit-identical to
# unpruned) executes on the real benchmark graphs, and a trace smoke test
# validating the --trace-out Chrome-trace output end to end.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo fmt --check
cargo build --release
cargo test -q

# Smoke: regenerates BENCH_search.json; fails if pruning ever changes the
# optimum on any model at p ∈ {8, 32, 64}.
cargo run -p pase-bench --release --bin bench_search

# Trace smoke: the acceptance search must write a valid Chrome-trace JSON
# document containing a span for every pipeline phase, and the spans must
# account for the reported elapsed time (within 10%).
trace_dir="$(mktemp -d)"
trap 'rm -rf "$trace_dir"' EXIT
cargo run -p pase-cli --release --bin pase -- search \
    --model transformer --devices 64 \
    --trace-out "$trace_dir/trace.json" --json --out "$trace_dir/spec.json"
python3 scripts/check_trace.py "$trace_dir/trace.json" "$trace_dir/spec.json"
